package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

func testWarehouse(t *testing.T) *hive.Warehouse {
	t.Helper()
	cfg := cluster.Default()
	cfg.Workers = 4
	w := hive.NewWarehouse(dfs.New(1<<20), cfg, "/warehouse")
	if _, err := w.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`); err != nil {
		t.Fatal(err)
	}
	tbl, err := w.Table("meterdata")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.LoadRows(tbl, meterRows(1, 60, 4, 4)); err != nil {
		t.Fatal(err)
	}
	return w
}

// meterRows builds deterministic readings; user ids start at firstUser.
func meterRows(firstUser, users, regions, days int) []storage.Row {
	base := time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(int64(firstUser)))
	var rows []storage.Row
	for d := 0; d < days; d++ {
		for u := firstUser; u < firstUser+users; u++ {
			rows = append(rows, storage.Row{
				storage.Int64(int64(u)),
				storage.Int64(int64(u%regions + 1)),
				storage.Time(base.AddDate(0, 0, d)),
				storage.Float64(math.Round(rng.Float64()*1000) / 100),
			})
		}
	}
	return rows
}

func mustQuery(t *testing.T, s *Server, sql string) *Response {
	t.Helper()
	resp, err := s.Query(context.Background(), Request{SQL: sql})
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return resp
}

// TestConcurrentQueriesWithLoads is the subsystem smoke test: one shared
// Server hammered by parallel SELECTs while LOADs interleave. Row counts
// must always sit on a batch boundary (no torn reads) and the cache must
// never serve a pre-load result after the load.
func TestConcurrentQueriesWithLoads(t *testing.T) {
	s := New(testWarehouse(t), Config{MaxConcurrent: 4})
	const perBatch = 60 * 4 // users * days per load batch
	valid := map[int64]bool{}
	for k := 1; k <= 4; k++ {
		valid[int64(k*perBatch)] = true
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				resp, err := s.Query(context.Background(), Request{
					SQL:     `SELECT count(*) FROM meterdata`,
					Session: fmt.Sprintf("client-%d", g),
				})
				if err != nil {
					errs <- err
					return
				}
				n := int64(resp.Result.Rows[0][0].AsFloat())
				if !valid[n] {
					errs <- fmt.Errorf("torn count %d", n)
					return
				}
			}
		}(g)
	}
	for k := 1; k <= 3; k++ {
		if _, err := s.LoadRows("meterdata", meterRows(1+k*60, 60, 4, 4)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	final := mustQuery(t, s, `SELECT count(*) FROM meterdata`)
	if n := int64(final.Result.Rows[0][0].AsFloat()); n != 4*perBatch {
		t.Fatalf("final count %d, want %d", n, 4*perBatch)
	}
	snap := s.Stats()
	if snap.Server.Queries == 0 || len(snap.Sessions) < 6 {
		t.Fatalf("metrics not recorded: %+v", snap.Server)
	}
}

// TestResultCacheHitAndInvalidation: a repeated identical query must hit the
// cache and return identical rows; a LOAD must invalidate so the next run
// reflects the new data.
func TestResultCacheHitAndInvalidation(t *testing.T) {
	s := New(testWarehouse(t), Config{})
	const q = `SELECT sum(powerConsumed) FROM meterdata WHERE userId >= 10 AND userId <= 50`

	first := mustQuery(t, s, q)
	if first.Cached {
		t.Fatal("first run must miss")
	}
	// Different formatting, same normal form: plan cache + result cache hit.
	second, err := s.Query(context.Background(), Request{
		SQL: "select  SUM(powerconsumed)\nfrom MeterData where userid>=10 and userid <= 50"})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second run must hit the result cache")
	}
	if second.Result.Rows[0][0] != first.Result.Rows[0][0] {
		t.Fatal("cached rows differ from computed rows")
	}
	st := s.Stats()
	if st.ResultCache.Hits == 0 || st.PlanCache.Hits == 0 {
		t.Fatalf("expected cache hits, got %+v %+v", st.ResultCache, st.PlanCache)
	}
	// A cache hit re-serves rows without cluster work: sim-seconds and
	// records must reflect one execution, not two.
	if st.Server.SimClusterSeconds != first.Result.Stats.SimTotalSec() {
		t.Fatalf("cache hit inflated sim-seconds: %v != %v",
			st.Server.SimClusterSeconds, first.Result.Stats.SimTotalSec())
	}

	// Invalidating LOAD: users 10..50 gain one more day of readings.
	if _, err := s.LoadRows("meterdata", meterRows(10, 41, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ResultCache.Invalidations == 0 {
		t.Fatal("load did not invalidate cached results")
	} else if st.Loads != 1 || st.RowsLoaded != 41 {
		t.Fatalf("load metrics: loads=%d rows=%d, want 1/41", st.Loads, st.RowsLoaded)
	}
	third := mustQuery(t, s, q)
	if third.Cached {
		t.Fatal("post-load run must miss")
	}
	if third.Result.Rows[0][0].AsFloat() <= first.Result.Rows[0][0].AsFloat() {
		t.Fatal("post-load sum should grow (non-negative readings added)")
	}
}

// TestDirectLoadCannotServeStale: a load performed on the warehouse behind
// the server's back bumps table versions, so version-qualified keys make the
// stale entry unreachable even without explicit invalidation.
func TestDirectLoadCannotServeStale(t *testing.T) {
	w := testWarehouse(t)
	s := New(w, Config{})
	const q = `SELECT count(*) FROM meterdata`
	before := mustQuery(t, s, q)
	tbl, _ := w.Table("meterdata")
	if err := w.LoadRows(tbl, meterRows(500, 10, 4, 4)); err != nil {
		t.Fatal(err)
	}
	after := mustQuery(t, s, q)
	if after.Cached {
		t.Fatal("stale cache hit after direct load")
	}
	if after.Result.Rows[0][0].AsFloat() != before.Result.Rows[0][0].AsFloat()+40 {
		t.Fatalf("count %v -> %v, want +40", before.Result.Rows[0][0], after.Result.Rows[0][0])
	}
}

// TestCatalogStatementsNeverCached: SHOW TABLES references no versioned
// table, so a cached copy could go stale across CREATE TABLE. It must bypass
// the result cache and always reflect the live catalog.
func TestCatalogStatementsNeverCached(t *testing.T) {
	s := New(testWarehouse(t), Config{})
	before := mustQuery(t, s, `SHOW TABLES`)
	if len(before.Result.Rows) != 1 {
		t.Fatalf("want 1 table, got %d", len(before.Result.Rows))
	}
	mustQuery(t, s, `CREATE TABLE audit_log (opId bigint, note string)`)
	after := mustQuery(t, s, `SHOW TABLES`)
	if after.Cached {
		t.Fatal("SHOW TABLES must never be served from cache")
	}
	if len(after.Result.Rows) != 2 {
		t.Fatalf("stale catalog: %d tables after create, want 2", len(after.Result.Rows))
	}
}

func TestAdmissionControl(t *testing.T) {
	s := New(testWarehouse(t), Config{MaxConcurrent: 1, MaxQueue: 1})
	// Occupy the only worker slot and the only queue slot.
	s.sem <- struct{}{}
	if err := s.admit(); err != nil {
		t.Fatal(err)
	}
	if err := s.admit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(context.Background(), Request{SQL: `SHOW TABLES`}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if s.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
	s.release()
	s.release()
	// Slot still occupied: an admitted query must time out in the queue.
	if _, err := s.Query(context.Background(), Request{SQL: `SHOW TABLES`, Timeout: 20 * time.Millisecond}); !errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("want ErrQueryTimeout, got %v", err)
	}
	<-s.sem
	if _, err := s.Query(context.Background(), Request{SQL: `SHOW TABLES`}); err != nil {
		t.Fatalf("query after slot freed: %v", err)
	}
	if got := s.InFlight(); got != 0 {
		t.Fatalf("in-flight = %d after quiesce", got)
	}
}

func TestQueryTimeoutDuringExecution(t *testing.T) {
	// Pacing stretches the query far past the deadline, so the timeout
	// fires mid-execution deterministically.
	s := New(testWarehouse(t), Config{SimPacing: time.Second})
	_, err := s.Query(context.Background(), Request{
		SQL:     `SELECT sum(powerConsumed) FROM meterdata`,
		Timeout: 30 * time.Millisecond,
	})
	if !errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("want ErrQueryTimeout, got %v", err)
	}
	if s.Stats().Server.Timeouts == 0 {
		t.Fatal("timeout not counted")
	}
	// The abandoned worker must still release its slot and admission.
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned query never released admission")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancellationIsNotTimeout: a caller-side cancel (client disconnect)
// must not inflate the timeout counter or map to ErrQueryTimeout.
func TestCancellationIsNotTimeout(t *testing.T) {
	s := New(testWarehouse(t), Config{MaxConcurrent: 1})
	s.sem <- struct{}{} // occupy the only slot so the query waits
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Query(ctx, Request{SQL: `SHOW TABLES`})
	<-s.sem
	if err == nil || errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("want cancellation error distinct from timeout, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	st := s.Stats()
	if st.Server.Timeouts != 0 || st.Server.Errors != 1 {
		t.Fatalf("cancel counted wrong: timeouts=%d errors=%d", st.Server.Timeouts, st.Server.Errors)
	}
}

// TestSessionOverflow: untrusted session ids must not grow the session map
// past the cap; the surplus pools into "overflow".
func TestSessionOverflow(t *testing.T) {
	s := New(testWarehouse(t), Config{})
	for i := 0; i < maxSessions+50; i++ {
		s.Session(fmt.Sprintf("sess-%d", i))
	}
	got := s.Session("one-more")
	if got.ID() != "overflow" {
		t.Fatalf("session past cap = %q, want overflow", got.ID())
	}
	if n := len(s.Stats().Sessions); n > maxSessions+1 {
		t.Fatalf("session map grew to %d, cap is %d+overflow", n, maxSessions)
	}
}

// TestLoadRowsMissingTable: the atomic by-name load surfaces a catalog
// error instead of writing anywhere.
func TestLoadRowsMissingTable(t *testing.T) {
	s := New(testWarehouse(t), Config{})
	if _, err := s.LoadRows("nosuch", meterRows(1, 1, 4, 1)); err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("want missing-table error, got %v", err)
	}
}

func TestGracefulDrain(t *testing.T) {
	s := New(testWarehouse(t), Config{MaxConcurrent: 2})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mustQuery(t, s, `SELECT sum(powerConsumed) FROM meterdata WHERE userId >= 3`)
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Query(context.Background(), Request{SQL: `SHOW TABLES`}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after drain, got %v", err)
	}
	if _, err := s.LoadRows("meterdata", meterRows(900, 1, 4, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed for load after drain, got %v", err)
	}
}

func TestDDLThroughServerInvalidates(t *testing.T) {
	s := New(testWarehouse(t), Config{})
	mustQuery(t, s, `SELECT count(*) FROM meterdata`)
	if n := s.Stats().ResultCache.Entries; n != 1 {
		t.Fatalf("cache entries = %d, want 1", n)
	}
	// A DGFIndex build rewrites meterdata: dependent entries must go.
	mustQuery(t, s, `CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
		AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_20',
		'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed)')`)
	if n := s.Stats().ResultCache.Entries; n != 0 {
		t.Fatalf("cache entries = %d after DDL, want 0", n)
	}
	resp := mustQuery(t, s, `SELECT sum(powerConsumed) FROM meterdata WHERE userId >= 5 AND userId <= 20 AND regionId >= 1 AND regionId <= 4 AND ts >= '2012-12-01' AND ts < '2012-12-03'`)
	if !strings.HasPrefix(resp.Result.Stats.AccessPath, "dgfindex") {
		t.Fatalf("access path %q, want dgfindex", resp.Result.Stats.AccessPath)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := New(testWarehouse(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// POST /query.
	body := `{"sql":"SELECT count(*) FROM meterdata","session":"ops-1"}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query status %d", resp.StatusCode)
	}
	var qr struct {
		Columns  []string `json:"columns"`
		Rows     [][]any  `json:"rows"`
		RowCount int      `json:"row_count"`
		Session  string   `json:"session"`
		Cached   bool     `json:"cached"`
		Stats    struct {
			AccessPath  string  `json:"access_path"`
			SimTotalSec float64 `json:"sim_total_sec"`
			RecordsRead int64   `json:"records_read"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if qr.RowCount != 1 || qr.Session != "ops-1" || qr.Stats.AccessPath == "" || qr.Stats.SimTotalSec <= 0 {
		t.Fatalf("bad query response: %+v", qr)
	}
	if n, ok := qr.Rows[0][0].(float64); !ok || n != 240 {
		t.Fatalf("count cell = %v, want 240", qr.Rows[0][0])
	}

	// GET /query repeats from cache.
	resp, err = http.Get(ts.URL + "/query?q=" + strings.ReplaceAll("SELECT count(*) FROM meterdata", " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !qr.Cached {
		t.Fatal("GET repeat should be cached")
	}

	// Bad SQL → 400 with an error payload.
	resp, err = http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"sql":"SELEC nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad SQL status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// /tables.
	resp, err = http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	var tl struct {
		Tables []hive.TableInfo `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tl.Tables) != 1 || tl.Tables[0].Name != "meterdata" || len(tl.Tables[0].Columns) != 4 {
		t.Fatalf("bad /tables: %+v", tl)
	}

	// /stats.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Server.Queries < 2 || snap.Sessions["ops-1"].Queries != 1 {
		t.Fatalf("bad /stats: %+v", snap.Server)
	}

	// /healthz flips to 503 on drain.
	resp, _ = http.Get(ts.URL + "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	s.Close(ctx)
	resp, _ = http.Get(ts.URL + "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query after drain %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestSimPacingStretchesWallTime(t *testing.T) {
	s := New(testWarehouse(t), Config{SimPacing: 2 * time.Millisecond})
	resp := mustQuery(t, s, `SELECT sum(powerConsumed) FROM meterdata`)
	wantMin := time.Duration(resp.Result.Stats.SimTotalSec() * float64(2*time.Millisecond))
	if resp.Wall < wantMin {
		t.Fatalf("wall %v < paced minimum %v", resp.Wall, wantMin)
	}
	// Cache hits skip pacing.
	again := mustQuery(t, s, `SELECT sum(powerConsumed) FROM meterdata`)
	if !again.Cached {
		t.Fatal("repeat should hit cache")
	}
	if again.Wall > wantMin {
		t.Fatalf("cached wall %v should be below paced %v", again.Wall, wantMin)
	}
}

// TestResultCacheByteBudget: with MaxResultBytes set, the cache evicts
// LRU-first to stay under the payload budget instead of keeping a fixed
// entry count, and a single result bigger than the whole budget is never
// cached.
func TestResultCacheByteBudget(t *testing.T) {
	s := New(testWarehouse(t), Config{MaxResultBytes: 2000})
	// Each per-user query returns 4 rows (~750 bytes with key overhead):
	// two fit the budget, more force evictions.
	for u := 1; u <= 6; u++ {
		mustQuery(t, s, fmt.Sprintf(`SELECT userId, powerConsumed FROM meterdata WHERE userId = %d`, u))
	}
	st := s.Stats().ResultCache
	if st.MaxBytes != 2000 {
		t.Fatalf("MaxBytes = %d, want 2000", st.MaxBytes)
	}
	if st.SizeBytes <= 0 || st.SizeBytes > st.MaxBytes {
		t.Fatalf("SizeBytes = %d, want within (0, %d]", st.SizeBytes, st.MaxBytes)
	}
	if st.Evictions == 0 {
		t.Fatalf("expected byte-budget evictions, got %+v", st)
	}
	if st.Entries >= 6 {
		t.Fatalf("cache kept all %d entries despite the byte budget", st.Entries)
	}

	// A 240-row full-table result exceeds the budget on its own: it must
	// not be cached (a repeat recomputes).
	mustQuery(t, s, `SELECT * FROM meterdata`)
	if again := mustQuery(t, s, `SELECT * FROM meterdata`); again.Cached {
		t.Fatal("oversized result was cached despite exceeding MaxResultBytes")
	}
}

// TestLoadEndpoint: collectors push readings over POST /load as JSON or
// CSV; rows decode against the table schema, route through LoadRows, and
// the response reports the invalidation churn.
func TestLoadEndpoint(t *testing.T) {
	s := New(testWarehouse(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Prime the cache so the load has something to invalidate.
	before := mustQuery(t, s, `SELECT count(*) FROM meterdata`)
	baseCount := before.Result.Rows[0][0].AsFloat()

	// JSON body: numbers for bigint/double, strings for timestamps.
	body := `{"table":"meterdata","rows":[[501,1,"2012-12-20 00:00:00",5.5],[502,2,"2012-12-20 00:15:00",6.25]]}`
	resp, err := http.Post(ts.URL+"/load", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var lr struct {
		Table       string `json:"table"`
		RowsLoaded  int    `json:"rows_loaded"`
		Invalidated int    `json:"invalidated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || lr.RowsLoaded != 2 || lr.Table != "meterdata" {
		t.Fatalf("JSON load: status %d, %+v", resp.StatusCode, lr)
	}
	if lr.Invalidated == 0 {
		t.Fatal("load did not report invalidated cache entries")
	}

	// CSV body with the table in the query string.
	resp, err = http.Post(ts.URL+"/load?table=meterdata", "text/csv",
		strings.NewReader("503,3,2012-12-21 00:00:00,7.5\n504,4,2012-12-21 00:15:00,8.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || lr.RowsLoaded != 2 {
		t.Fatalf("CSV load: status %d, %+v", resp.StatusCode, lr)
	}

	after := mustQuery(t, s, `SELECT count(*) FROM meterdata`)
	if got := after.Result.Rows[0][0].AsFloat(); got != baseCount+4 {
		t.Fatalf("count %v -> %v, want +4", baseCount, got)
	}
	snap := s.Stats()
	if snap.Loads != 2 || snap.RowsLoaded != 4 || snap.ResultInvalidations == 0 {
		t.Fatalf("load metrics: %+v", snap)
	}

	// Error paths: wrong arity, unknown table, missing rows.
	for _, bad := range []string{
		`{"table":"meterdata","rows":[[1,2]]}`,
		`{"table":"nosuch","rows":[[1,2,"2012-12-20",1.0]]}`,
		`{"table":"meterdata"}`,
	} {
		resp, err := http.Post(ts.URL+"/load", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad load %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
