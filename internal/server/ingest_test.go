package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/shard"
	"github.com/smartgrid-oss/dgfindex/internal/trace"
)

// postLoad POSTs a body to /load and returns the status code and decoded
// JSON body (loadResponse fields on success, {"error": ...} on failure).
func postLoad(t *testing.T, url, contentType string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("non-JSON /load response (%d): %s", resp.StatusCode, raw)
	}
	return resp.StatusCode, out
}

// jsonLoadBody renders n meterdata rows as a POST /load JSON body.
func jsonLoadBody(t *testing.T, firstUser, n int) []byte {
	t.Helper()
	rows := meterRows(firstUser, n, 4, 1)
	req := loadRequest{Table: "meterdata"}
	for _, row := range rows {
		req.Rows = append(req.Rows, []any{row[0].I, row[1].I, row[2].I, row[3].F})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// csvLoadBody renders n meterdata rows as CSV lines for ?table=meterdata.
func csvLoadBody(firstUser, n int) []byte {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		u := firstUser + i
		fmt.Fprintf(&b, "%d,%d,%d,%g\n", u, u%4+1, 1354320000+i, 3.25)
	}
	return b.Bytes()
}

// TestLoadBodyTooLarge: bodies above Config.MaxLoadBytes are refused with
// 413 and a clear error on both the JSON and CSV paths — never silently
// truncated to a loadable prefix.
func TestLoadBodyTooLarge(t *testing.T) {
	s := New(testWarehouse(t), Config{MaxLoadBytes: 512})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := jsonLoadBody(t, 1000, 100)
	if int64(len(big)) <= 512 {
		t.Fatalf("test body is only %d bytes, need > 512", len(big))
	}
	code, out := postLoad(t, ts.URL+"/load", "application/json", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized JSON load: status %d, want 413 (%v)", code, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "512-byte limit") {
		t.Fatalf("413 error should name the limit, got %q", out["error"])
	}

	bigCSV := csvLoadBody(1000, 100)
	if int64(len(bigCSV)) <= 512 {
		t.Fatalf("test CSV body is only %d bytes, need > 512", len(bigCSV))
	}
	code, out = postLoad(t, ts.URL+"/load?table=meterdata", "text/csv", bigCSV)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized CSV load: status %d, want 413 (%v)", code, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "request body too large") {
		t.Fatalf("CSV 413 error unclear: %q", out["error"])
	}

	// Nothing was loaded by the refused requests.
	if got := s.Stats().RowsLoaded; got != 0 {
		t.Fatalf("refused loads still loaded %d rows", got)
	}

	// A body under the bound passes on both paths.
	small := jsonLoadBody(t, 2000, 2)
	if code, out := postLoad(t, ts.URL+"/load", "application/json", small); code != http.StatusOK {
		t.Fatalf("small JSON load: status %d (%v)", code, out)
	}
	if code, out := postLoad(t, ts.URL+"/load?table=meterdata", "text/csv", csvLoadBody(2100, 2)); code != http.StatusOK {
		t.Fatalf("small CSV load: status %d (%v)", code, out)
	}
	if got := s.Stats().RowsLoaded; got != 4 {
		t.Fatalf("loaded %d rows, want 4", got)
	}
}

// walServer builds a sharded server with durable ingest enabled over a
// temp log dir.
func walServer(t *testing.T, cfg Config) (*Server, *shard.Router) {
	t.Helper()
	cfg.WALDir = t.TempDir()
	if cfg.FsyncPolicy == "" {
		cfg.FsyncPolicy = "off"
	}
	s, r := shardedServer(t, cfg)
	if err := s.WALError(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, r
}

// TestLoadSyncAndAsyncOverHTTP: POST /load on a WAL fleet acks as "logged"
// with an LSN; ?sync=1 acks "applied" and the rows are immediately
// queryable. After draining, every async-acked row is visible too.
func TestLoadSyncAndAsyncOverHTTP(t *testing.T) {
	s, r := walServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	base := mustQuery(t, s, `SELECT count(*) FROM meterdata`).Result.Rows[0][0].AsFloat()

	code, out := postLoad(t, ts.URL+"/load", "application/json", jsonLoadBody(t, 500, 8))
	if code != http.StatusOK {
		t.Fatalf("async load: status %d (%v)", code, out)
	}
	if out["durability"] != "logged" {
		t.Fatalf("async load durability = %v, want logged", out["durability"])
	}
	if lsn, _ := out["lsn"].(float64); lsn < 1 {
		t.Fatalf("async load lsn = %v, want >= 1", out["lsn"])
	}

	code, out = postLoad(t, ts.URL+"/load?sync=1", "application/json", jsonLoadBody(t, 600, 8))
	if code != http.StatusOK {
		t.Fatalf("sync load: status %d (%v)", code, out)
	}
	if out["durability"] != "applied" {
		t.Fatalf("sync load durability = %v, want applied", out["durability"])
	}

	// The sync-acked batch is queryable now; after a drain both are.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.DrainWAL(ctx); err != nil {
		t.Fatal(err)
	}
	got := mustQuery(t, s, `SELECT count(*) FROM meterdata`).Result.Rows[0][0].AsFloat()
	if want := base + 16; got != want {
		t.Fatalf("count after drain = %v, want %v", got, want)
	}
}

// TestCacheInvalidationAtApplyTime: an async-acked load must not leave a
// stale cached count behind once its rows apply — the OnApply hook evicts
// dependent results when the rows actually land.
func TestCacheInvalidationAtApplyTime(t *testing.T) {
	s, r := walServer(t, Config{})
	base := mustQuery(t, s, `SELECT count(*) FROM meterdata`).Result.Rows[0][0].AsFloat()

	if _, err := s.LoadRowsCtx(context.Background(), "meterdata", meterRows(700, 10, 4, 1), false); err != nil {
		t.Fatal(err)
	}
	// Query immediately: may race the appliers and cache a pre-apply count.
	mustQuery(t, s, `SELECT count(*) FROM meterdata`)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.DrainWAL(ctx); err != nil {
		t.Fatal(err)
	}
	// OnApply fires just after the applied watermark advances, so give the
	// eviction a moment; the cached pre-apply count must not survive it.
	want := base + 10
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := mustQuery(t, s, `SELECT count(*) FROM meterdata`).Result.Rows[0][0].AsFloat()
		if got == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("count stuck at %v, want %v (stale cache not invalidated at apply time)", got, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.Stats().RowsApplied; got < 10 {
		t.Fatalf("rows_applied = %d, want >= 10 (OnApply hook did not run)", got)
	}
}

// TestBuildHealthz: the pure classifier behind /healthz. A shard with no
// readable replica is "catching_up" (repairing) when its missing replicas
// are replaying the WAL, and "degraded" (dead) only when they are not.
func TestBuildHealthz(t *testing.T) {
	set := func(shardID, replicas, live, catching int) shard.SetHealth {
		return shard.SetHealth{Shard: shardID, Replicas: replicas, Live: live, CatchingUp: catching}
	}
	cases := []struct {
		name       string
		health     []shard.SetHealth
		status     string
		code       int
		dead       []int
		catchingUp []int
	}{
		{
			name:   "all live",
			health: []shard.SetHealth{set(0, 2, 2, 0), set(1, 2, 2, 0)},
			status: "ok", code: http.StatusOK,
		},
		{
			name:   "one replica catching up, shard still readable",
			health: []shard.SetHealth{set(0, 2, 1, 1), set(1, 2, 2, 0)},
			status: "ok", code: http.StatusOK,
		},
		{
			name:   "whole shard catching up",
			health: []shard.SetHealth{set(0, 2, 0, 2), set(1, 2, 2, 0)},
			status: "catching_up", code: http.StatusServiceUnavailable,
			catchingUp: []int{0},
		},
		{
			name:   "whole shard dead",
			health: []shard.SetHealth{set(0, 2, 0, 0), set(1, 2, 2, 0)},
			status: "degraded", code: http.StatusServiceUnavailable,
			dead: []int{0},
		},
		{
			name:   "dead shard outranks catching-up shard",
			health: []shard.SetHealth{set(0, 2, 0, 1), set(1, 2, 0, 0)},
			status: "degraded", code: http.StatusServiceUnavailable,
			dead: []int{1}, catchingUp: []int{0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, code := buildHealthz(tc.health)
			if resp.Status != tc.status || code != tc.code {
				t.Fatalf("status %q/%d, want %q/%d", resp.Status, code, tc.status, tc.code)
			}
			if fmt.Sprint(resp.DeadShards) != fmt.Sprint(tc.dead) && (len(resp.DeadShards) != 0 || len(tc.dead) != 0) {
				t.Fatalf("DeadShards = %v, want %v", resp.DeadShards, tc.dead)
			}
			if fmt.Sprint(resp.CatchingUpShards) != fmt.Sprint(tc.catchingUp) && (len(resp.CatchingUpShards) != 0 || len(tc.catchingUp) != 0) {
				t.Fatalf("CatchingUpShards = %v, want %v", resp.CatchingUpShards, tc.catchingUp)
			}
		})
	}
}

// TestHealthzCatchingUpEndToEnd: kill a replica on a WAL fleet, revive it,
// and confirm /healthz never calls the fleet dead while its only
// unavailable replicas are repairing.
func TestHealthzCatchingUpEndToEnd(t *testing.T) {
	s, r := walServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() (int, healthzResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out healthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	if code, out := get(); code != http.StatusOK || out.Status != "ok" {
		t.Fatalf("healthy fleet: %d %+v", code, out)
	}

	r.Kill(1, 0)
	if code, out := get(); code != http.StatusOK {
		t.Fatalf("one dead replica of two should stay ok: %d %+v", code, out)
	}
	if _, err := s.LoadRowsCtx(context.Background(), "meterdata", meterRows(800, 8, 4, 1), false); err != nil {
		t.Fatalf("load with a dead replica should hint, not fail: %v", err)
	}
	r.Revive(1, 0)

	// While (and after) catch-up, the fleet must never classify shard 1 as
	// dead: its second replica is live the whole time.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, out := get()
		if len(out.DeadShards) > 0 {
			t.Fatalf("shard listed dead during catch-up: %d %+v", code, out)
		}
		if code == http.StatusOK && out.CatchingUp == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("catch-up never settled: %d %+v", code, out)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatsAndMetricsExposeWAL: /stats carries the per-replica WAL
// positions and /metrics exposes the WAL families in valid exposition
// format, agreeing with the snapshot.
func TestStatsAndMetricsExposeWAL(t *testing.T) {
	s, r := walServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.LoadRowsCtx(context.Background(), "meterdata", meterRows(900, 12, 4, 1), true); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.DrainWAL(ctx); err != nil {
		t.Fatal(err)
	}
	// Execute one query so the per-path families have samples (the text
	// parser rejects a declared family with none).
	mustQuery(t, s, `SELECT count(*) FROM meterdata`)

	snap := s.Stats()
	if len(snap.WAL) != 4 {
		t.Fatalf("/stats wal section has %d shards, want 4", len(snap.WAL))
	}
	var committed uint64
	for _, sh := range snap.WAL {
		if len(sh.Replicas) != 2 {
			t.Fatalf("shard %d has %d replica entries, want 2", sh.Shard, len(sh.Replicas))
		}
		committed += sh.NextLSN - 1
		for _, rep := range sh.Replicas {
			if rep.AppliedLSN != rep.LastLSN {
				t.Fatalf("drained replica %d/%d lags: applied %d, last %d", sh.Shard, rep.Replica, rep.AppliedLSN, rep.LastLSN)
			}
		}
	}
	if committed == 0 {
		t.Fatal("no shard committed any WAL record")
	}
	// OnApply fires once per replica apply, so each row counts once per
	// replica that applied it.
	if snap.RowsApplied != 24 {
		t.Fatalf("rows_applied = %d, want 24 (12 rows x 2 replicas)", snap.RowsApplied)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fams, err := trace.ParseMetrics(string(body))
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus exposition: %v\n%s", err, body)
	}
	if got := famValue(t, fams, "dgf_wal_rows_applied_total"); got != float64(snap.RowsApplied) {
		t.Fatalf("dgf_wal_rows_applied_total = %v, /stats says %v", got, snap.RowsApplied)
	}
	for _, name := range []string{"dgf_wal_pending_records", "dgf_wal_last_lsn", "dgf_wal_applied_lsn", "dgf_wal_replica_catching_up"} {
		fam := fams[name]
		if fam == nil {
			t.Fatalf("metric family %s missing", name)
		}
		if len(fam.Samples) != 8 {
			t.Fatalf("%s has %d samples, want 8 (4 shards x 2 replicas)", name, len(fam.Samples))
		}
		for _, sm := range fam.Samples {
			if sm.Labels["shard"] == "" || sm.Labels["replica"] == "" {
				t.Fatalf("%s sample lacks shard/replica labels: %+v", name, sm)
			}
		}
	}
	// Every replica drained, so pending depth and lag are zero everywhere.
	for _, sm := range fams["dgf_wal_pending_records"].Samples {
		if sm.Value != 0 {
			t.Fatalf("pending records nonzero after drain: %+v", sm)
		}
	}
}

// TestWALRequiresRouterBackend: Config.WALDir on a plain single-warehouse
// backend defers a clear failure into WALError and every load, instead of
// silently running without durability.
func TestWALRequiresRouterBackend(t *testing.T) {
	s := New(testWarehouse(t), Config{WALDir: t.TempDir()})
	err := s.WALError()
	if err == nil || !strings.Contains(err.Error(), "shard-router backend") {
		t.Fatalf("WALError = %v, want shard-router complaint", err)
	}
	if _, err := s.LoadRows("meterdata", meterRows(1, 1, 4, 1)); err == nil || !strings.Contains(err.Error(), "durable ingest unavailable") {
		t.Fatalf("load on a mis-configured server = %v, want durable-ingest refusal", err)
	}

	// A bad fsync policy is the same class of boot error.
	s2, _ := shardedServer(t, Config{WALDir: t.TempDir(), FsyncPolicy: "sometimes"})
	if err := s2.WALError(); err == nil || !strings.Contains(err.Error(), "sometimes") {
		t.Fatalf("WALError = %v, want bad-policy complaint", err)
	}
}
