package server

import (
	"container/list"
	"sync"

	"github.com/smartgrid-oss/dgfindex/internal/hive"
)

// lru is a minimal mutex-guarded LRU map. Both caches in the serving layer
// (parsed plans, query results) are built on it. Entries may carry a byte
// size; when maxBytes > 0 the cache also evicts oldest-first until the
// total size fits the budget.
type lru[V any] struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	maxBytes, curBytes      int64
	hits, misses, evictions int64
}

type lruEntry[V any] struct {
	key  string
	val  V
	size int64
}

func newLRU[V any](max int) *lru[V] {
	return &lru[V]{max: max, ll: list.New(), entries: map[string]*list.Element{}}
}

func (c *lru[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var zero V
	if c.max <= 0 {
		c.misses++
		return zero, false
	}
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

func (c *lru[V]) put(key string, val V) { c.putSized(key, val, 0) }

// putSized inserts val accounting size bytes against the cache's byte
// budget. A value larger than the whole budget is not cached at all (it
// would only evict everything else on its way in and out).
func (c *lru[V]) putSized(key string, val V, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max <= 0 {
		return
	}
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*lruEntry[V])
		c.curBytes += size - e.size
		e.val, e.size = val, size
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val, size: size})
		c.curBytes += size
	}
	for c.ll.Len() > c.max || (c.maxBytes > 0 && c.curBytes > c.maxBytes) {
		oldest := c.ll.Back()
		e := oldest.Value.(*lruEntry[V])
		if e.key == key && c.ll.Len() == 1 {
			break
		}
		c.ll.Remove(oldest)
		delete(c.entries, e.key)
		c.curBytes -= e.size
		c.evictions++
	}
}

// removeIf deletes every entry whose value matches pred and returns how many
// were removed.
func (c *lru[V]) removeIf(pred func(V) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var doomed []*list.Element
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if pred(el.Value.(*lruEntry[V]).val) {
			doomed = append(doomed, el)
		}
	}
	for _, el := range doomed {
		e := el.Value.(*lruEntry[V])
		c.ll.Remove(el)
		delete(c.entries, e.key)
		c.curBytes -= e.size
	}
	return len(doomed)
}

func (c *lru[V]) sizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}

func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *lru[V]) stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// cachedResult is one result-cache entry: the finished Result plus the
// tables it read (invalidation scans match on these).
type cachedResult struct {
	tables []string
	res    *hive.Result
}

// resultCache caches SELECT results keyed by normalized SQL plus the read
// tables' version counters. Version-qualified keys make stale entries
// unreachable the moment a table mutates; invalidation additionally evicts
// them eagerly so memory is returned and the invalidation counter surfaces
// in /stats. Entries are accounted by approximate row-payload bytes so the
// cache can hold a memory budget rather than an entry count.
type resultCache struct {
	lru           *lru[cachedResult]
	mu            sync.Mutex
	invalidations int64
}

func newResultCache(max int, maxBytes int64) *resultCache {
	l := newLRU[cachedResult](max)
	l.maxBytes = maxBytes
	return &resultCache{lru: l}
}

func (c *resultCache) get(key string) (*hive.Result, bool) {
	e, ok := c.lru.get(key)
	if !ok {
		return nil, false
	}
	return e.res, true
}

func (c *resultCache) put(key string, tables []string, res *hive.Result) {
	c.lru.putSized(key, cachedResult{tables: tables, res: res}, resultSizeBytes(key, res))
}

// resultSizeBytes estimates the resident size of one cached result: the
// key, the column names, and per row a fixed header plus each cell's
// payload (strings by length, scalar kinds by the Value struct).
func resultSizeBytes(key string, res *hive.Result) int64 {
	const rowOverhead, cellOverhead = 48, 32
	n := int64(len(key) + len(res.Message) + 96)
	for _, c := range res.Columns {
		n += int64(len(c)) + 16
	}
	for _, row := range res.Rows {
		n += rowOverhead
		for _, v := range row {
			n += cellOverhead + int64(len(v.S))
		}
	}
	return n
}

// invalidateTables evicts every entry that read one of the named tables
// (lower-cased) and returns how many were dropped.
func (c *resultCache) invalidateTables(names []string) int {
	if len(names) == 0 {
		return 0
	}
	doomed := map[string]bool{}
	for _, n := range names {
		doomed[n] = true
	}
	n := c.lru.removeIf(func(e cachedResult) bool {
		for _, t := range e.tables {
			if doomed[t] {
				return true
			}
		}
		return false
	})
	c.mu.Lock()
	c.invalidations += int64(n)
	c.mu.Unlock()
	return n
}

// CacheStats is the JSON-ready counter snapshot of one cache.
type CacheStats struct {
	Entries       int   `json:"entries"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations,omitempty"`
	// SizeBytes is the estimated resident payload of all entries;
	// MaxBytes is the configured budget (0 = uncapped).
	SizeBytes int64 `json:"size_bytes,omitempty"`
	MaxBytes  int64 `json:"max_bytes,omitempty"`
}

func (c *resultCache) stats() CacheStats {
	h, m, e := c.lru.stats()
	c.mu.Lock()
	inv := c.invalidations
	c.mu.Unlock()
	return CacheStats{
		Entries: c.lru.len(), Hits: h, Misses: m, Evictions: e, Invalidations: inv,
		SizeBytes: c.lru.sizeBytes(), MaxBytes: c.lru.maxBytes,
	}
}
