package server

import (
	"container/list"
	"sync"

	"github.com/smartgrid-oss/dgfindex/internal/hive"
)

// lru is a minimal mutex-guarded LRU map. Both caches in the serving layer
// (parsed plans, query results) are built on it.
type lru[V any] struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions int64
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](max int) *lru[V] {
	return &lru[V]{max: max, ll: list.New(), entries: map[string]*list.Element{}}
}

func (c *lru[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var zero V
	if c.max <= 0 {
		c.misses++
		return zero, false
	}
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

func (c *lru[V]) put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry[V]).key)
		c.evictions++
	}
}

// removeIf deletes every entry whose value matches pred and returns how many
// were removed.
func (c *lru[V]) removeIf(pred func(V) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var doomed []*list.Element
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if pred(el.Value.(*lruEntry[V]).val) {
			doomed = append(doomed, el)
		}
	}
	for _, el := range doomed {
		c.ll.Remove(el)
		delete(c.entries, el.Value.(*lruEntry[V]).key)
	}
	return len(doomed)
}

func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *lru[V]) stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// cachedResult is one result-cache entry: the finished Result plus the
// tables it read (invalidation scans match on these).
type cachedResult struct {
	tables []string
	res    *hive.Result
}

// resultCache caches SELECT results keyed by normalized SQL plus the read
// tables' version counters. Version-qualified keys make stale entries
// unreachable the moment a table mutates; invalidation additionally evicts
// them eagerly so memory is returned and the invalidation counter surfaces
// in /stats.
type resultCache struct {
	lru           *lru[cachedResult]
	mu            sync.Mutex
	invalidations int64
}

func newResultCache(max int) *resultCache {
	return &resultCache{lru: newLRU[cachedResult](max)}
}

func (c *resultCache) get(key string) (*hive.Result, bool) {
	e, ok := c.lru.get(key)
	if !ok {
		return nil, false
	}
	return e.res, true
}

func (c *resultCache) put(key string, tables []string, res *hive.Result) {
	c.lru.put(key, cachedResult{tables: tables, res: res})
}

// invalidateTables evicts every entry that read one of the named tables
// (lower-cased) and returns how many were dropped.
func (c *resultCache) invalidateTables(names []string) int {
	if len(names) == 0 {
		return 0
	}
	doomed := map[string]bool{}
	for _, n := range names {
		doomed[n] = true
	}
	n := c.lru.removeIf(func(e cachedResult) bool {
		for _, t := range e.tables {
			if doomed[t] {
				return true
			}
		}
		return false
	})
	c.mu.Lock()
	c.invalidations += int64(n)
	c.mu.Unlock()
	return n
}

// CacheStats is the JSON-ready counter snapshot of one cache.
type CacheStats struct {
	Entries       int   `json:"entries"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations,omitempty"`
}

func (c *resultCache) stats() CacheStats {
	h, m, e := c.lru.stats()
	c.mu.Lock()
	inv := c.invalidations
	c.mu.Unlock()
	return CacheStats{Entries: c.lru.len(), Hits: h, Misses: m, Evictions: e, Invalidations: inv}
}
