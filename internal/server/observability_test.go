package server

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/shard"
	"github.com/smartgrid-oss/dgfindex/internal/trace"
)

// TestQuantileFallback pins the two degenerate histogram shapes down:
// observations entirely in the +Inf bucket report that bucket's lower bound
// (the last finite bound), and a total larger than the histogram's contents
// — the fallback path — reports the highest populated bucket's lower bound
// instead of unconditionally claiming the last finite bound.
func TestQuantileFallback(t *testing.T) {
	slots := len(latencyBucketsMs) + 1
	lastBound := latencyBucketsMs[len(latencyBucketsMs)-1]

	// Everything in +Inf: every quantile is "at least lastBound".
	hist := make([]int64, slots)
	hist[slots-1] = 7
	for _, q := range []float64{0.50, 0.95, 0.99} {
		if got := quantileLocked(hist, 7, q); got != lastBound {
			t.Fatalf("all-+Inf q%.2f = %v, want %v", q, got, lastBound)
		}
	}

	// Inflated total with observations in a low bucket: the rank lands past
	// every bucket, and the fallback must report the populated bucket's lower
	// bound (1ms for the (1,2] bucket), not 5000ms.
	hist = make([]int64, slots)
	hist[1] = 3
	if got := quantileLocked(hist, 100, 0.99); got != latencyBucketsMs[0] {
		t.Fatalf("inflated-total fallback = %v, want %v", got, latencyBucketsMs[0])
	}
	// Same shape, first bucket: its lower bound is 0.
	hist = make([]int64, slots)
	hist[0] = 3
	if got := quantileLocked(hist, 100, 0.99); got != 0 {
		t.Fatalf("inflated-total first-bucket fallback = %v, want 0", got)
	}
	// Empty histogram (with and without a claimed total) reports 0.
	if got := quantileLocked(make([]int64, slots), 5, 0.5); got != 0 {
		t.Fatalf("empty hist with total = %v, want 0", got)
	}
	if got := quantileLocked(make([]int64, slots), 0, 0.5); got != 0 {
		t.Fatalf("empty hist = %v, want 0", got)
	}
}

// TestAdmissionWaitSeparateFromWall saturates a one-worker pool and checks
// the queue wait lands in QueueWaitSeconds — inside the full wall, but
// reported on its own so admission pressure is distinguishable from slow
// execution.
func TestAdmissionWaitSeparateFromWall(t *testing.T) {
	s := New(testWarehouse(t), Config{MaxConcurrent: 1})
	s.sem <- struct{}{} // occupy the only worker slot
	done := make(chan error, 1)
	go func() {
		_, err := s.Query(context.Background(), Request{SQL: `SHOW TABLES`})
		done <- err
	}()
	time.Sleep(60 * time.Millisecond) // the query queues on the saturated pool
	<-s.sem                           // free the slot; the queued query runs
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	m := s.Stats().Server
	if m.QueueWaitSeconds < 0.04 {
		t.Fatalf("QueueWaitSeconds = %v, want >= 0.04 (query waited ~60ms)", m.QueueWaitSeconds)
	}
	if m.WallSeconds < m.QueueWaitSeconds {
		t.Fatalf("wall %v must include queue wait %v", m.WallSeconds, m.QueueWaitSeconds)
	}
	var queueObs int64
	for _, b := range m.QueueWait {
		queueObs += b.Count
	}
	if queueObs != m.Queries {
		t.Fatalf("queue-wait histogram holds %d observations, want %d (one per query)", queueObs, m.Queries)
	}
}

// TestMetricsCoherenceUnderConcurrency hammers Query, QueryStream, and
// Stats from parallel goroutines (run under -race in CI) and checks the
// counters stay coherent: queries == successes + errors as counted by the
// callers, and the latency histogram holds exactly one observation per query.
func TestMetricsCoherenceUnderConcurrency(t *testing.T) {
	s := New(testWarehouse(t), Config{MaxConcurrent: 4})
	var ok, errs atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := fmt.Sprintf("racer-%d", g)
			for i := 0; i < 12; i++ {
				switch i % 3 {
				case 0: // plain query (cache hits count as queries too)
					if _, err := s.Query(context.Background(), Request{SQL: `SELECT count(*) FROM meterdata`, Session: sess}); err != nil {
						errs.Add(1)
					} else {
						ok.Add(1)
					}
				case 1: // streaming query, drained then closed
					st, err := s.QueryStream(context.Background(), Request{SQL: `SELECT userId FROM meterdata WHERE userId <= 5`, Session: sess})
					if err != nil {
						errs.Add(1)
						continue
					}
					for st.Next() {
					}
					if st.Err() != nil {
						errs.Add(1)
					} else {
						ok.Add(1)
					}
					st.Close()
				case 2: // execution error
					if _, err := s.Query(context.Background(), Request{SQL: `SELECT count(*) FROM nosuch`, Session: sess}); err != nil {
						errs.Add(1)
					} else {
						ok.Add(1)
					}
				}
				if i%4 == 0 {
					s.Stats() // concurrent snapshots must never tear
				}
			}
		}(g)
	}
	wg.Wait()

	m := s.Stats().Server
	if m.Queries != ok.Load()+errs.Load() {
		t.Fatalf("queries = %d, want successes %d + errors %d", m.Queries, ok.Load(), errs.Load())
	}
	if m.Errors != errs.Load() {
		t.Fatalf("errors = %d, want %d", m.Errors, errs.Load())
	}
	var histObs int64
	for _, b := range m.Latency {
		histObs += b.Count
	}
	if histObs != m.Queries {
		t.Fatalf("latency histogram holds %d observations, want %d", histObs, m.Queries)
	}
}

// famValue returns the single sample of a one-sample metric family.
func famValue(t *testing.T, fams map[string]*trace.MetricFamily, name string) float64 {
	t.Helper()
	fam := fams[name]
	if fam == nil {
		t.Fatalf("metric family %s missing", name)
	}
	if len(fam.Samples) != 1 {
		t.Fatalf("family %s has %d samples, want 1", name, len(fam.Samples))
	}
	return fam.Samples[0].Value
}

// TestMetricsEndpointMatchesStats scrapes GET /metrics from a live test
// server, validates the body with the in-repo Prometheus text parser (which
// enforces TYPE lines, label syntax, and histogram invariants), and checks
// the exposed counters agree with the /stats snapshot.
func TestMetricsEndpointMatchesStats(t *testing.T) {
	s := New(testWarehouse(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mustQuery(t, s, `SELECT count(*) FROM meterdata`)
	mustQuery(t, s, `SELECT count(*) FROM meterdata`) // result-cache hit
	s.Query(context.Background(), Request{SQL: `SELECT count(*) FROM nosuch`})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := trace.ParseMetrics(string(body))
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus exposition: %v\n%s", err, body)
	}

	snap := s.Stats()
	m := snap.Server
	for name, want := range map[string]float64{
		"dgf_queries_total":           float64(m.Queries),
		"dgf_query_errors_total":      float64(m.Errors),
		"dgf_cache_hits_total":        float64(m.CacheHits),
		"dgf_records_read_total":      float64(m.RecordsRead),
		"dgf_bytes_read_total":        float64(m.BytesRead),
		"dgf_rows_out_total":          float64(m.RowsOut),
		"dgf_result_cache_hits_total": float64(snap.ResultCache.Hits),
		"dgf_in_flight":               0,
	} {
		if got := famValue(t, fams, name); got != want {
			t.Errorf("%s = %v, /stats says %v", name, got, want)
		}
	}

	// The latency histogram's _count must equal the query counter (the
	// parser already verified buckets are cumulative and _sum is present).
	lat := fams["dgf_query_latency_ms"]
	if lat == nil || lat.Type != "histogram" {
		t.Fatalf("dgf_query_latency_ms missing or not a histogram: %+v", lat)
	}
	for _, sm := range lat.Samples {
		if sm.Name == "dgf_query_latency_ms_count" && sm.Value != float64(m.Queries) {
			t.Errorf("latency _count = %v, want %v", sm.Value, m.Queries)
		}
	}

	// Per-path counters cover exactly the executed, uncached queries.
	paths := fams["dgf_path_queries_total"]
	if paths == nil {
		t.Fatal("dgf_path_queries_total missing")
	}
	var pathTotal float64
	for _, sm := range paths.Samples {
		if sm.Labels["path"] == "" {
			t.Errorf("path sample without path label: %+v", sm)
		}
		pathTotal += sm.Value
	}
	if want := float64(m.Queries - m.CacheHits - m.Errors); pathTotal != want {
		t.Errorf("sum of per-path queries = %v, want %v (executed uncached)", pathTotal, want)
	}
}

// TestFlightRecorderEndpoint: errored queries always land in the recorder;
// GET /debug/slow serves them newest-first with their span trees.
func TestFlightRecorderEndpoint(t *testing.T) {
	s := New(testWarehouse(t), Config{TraceRingSize: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mustQuery(t, s, `SELECT count(*) FROM meterdata`) // fast and clean: not recorded
	s.Query(context.Background(), Request{SQL: `SELECT count(*) FROM nosuch`, Session: "ops-2"})

	recs := s.SlowTraces()
	if len(recs) != 1 {
		t.Fatalf("recorder holds %d records, want 1 (the errored query)", len(recs))
	}
	rec := recs[0]
	if rec.Error == "" || rec.Slow || rec.Session != "ops-2" {
		t.Fatalf("bad record: %+v", rec)
	}
	if rec.Trace.Name != "query" || rec.Trace.Find("plan") == nil {
		t.Fatalf("record trace lacks the query/plan spans: %+v", rec.Trace)
	}

	resp, err := http.Get(ts.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/slow status %d: %s", resp.StatusCode, body)
	}
	for _, want := range []string{`FROM nosuch`, `"ring_size":4`, `"name":"query"`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/debug/slow missing %s:\n%s", want, body)
		}
	}
}

// shardedServer builds a Server over a 4-shard, 2-replica fleet loaded with
// the meter workload (small blocks, so scans cross many split boundaries and
// a mid-query kill has a window to land in).
func shardedServer(t *testing.T, cfg Config) (*Server, *shard.Router) {
	t.Helper()
	cc := cluster.Default()
	cc.Workers = 4
	r, err := shard.New(shard.Config{Shards: 4, Replicas: 2, Key: "userId"}, func(int, int) *hive.Warehouse {
		return hive.NewWarehouse(dfs.New(1<<14), cc, "/warehouse")
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadRowsByName("meterdata", meterRows(1, 80, 4, 6)); err != nil {
		t.Fatal(err)
	}
	return NewWithBackend(r, cfg), r
}

// TestTraceEndToEndSharded is the span-tree acceptance check on a replicated
// fleet: the root's wall equals the response's measured wall, and the
// per-shard child spans' bytes_read attributes sum to the merged query's
// BytesRead exactly.
func TestTraceEndToEndSharded(t *testing.T) {
	s, _ := shardedServer(t, Config{CacheEntries: -1})
	resp, err := s.Query(context.Background(), Request{
		SQL:   `SELECT sum(powerConsumed), count(*) FROM meterdata WHERE userId >= 1 AND userId <= 80`,
		Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("Trace requested but response carries no span tree")
	}
	root := resp.Trace
	if root.Name != "query" {
		t.Fatalf("root span %q, want query", root.Name)
	}
	respWallMs := float64(resp.Wall.Microseconds()) / 1e3
	if diff := math.Abs(root.WallMs - respWallMs); diff > 1 {
		t.Fatalf("root wall %.3fms vs response wall %.3fms: off by %.3fms", root.WallMs, respWallMs, diff)
	}
	for _, name := range []string{"plan", "admission", "scatter"} {
		if root.Find(name) == nil {
			t.Fatalf("span %q missing from tree", name)
		}
	}

	scatter := root.Find("scatter")
	var sumBytes int64
	shardSpans := 0
	for i := range scatter.Children {
		c := &scatter.Children[i]
		if !strings.HasPrefix(c.Name, "shard ") {
			continue
		}
		shardSpans++
		b, err := strconv.ParseInt(c.Attr("bytes_read"), 10, 64)
		if err != nil {
			t.Fatalf("span %s bytes_read %q: %v", c.Name, c.Attr("bytes_read"), err)
		}
		sumBytes += b
		if c.Attr("replica") == "" || c.Attr("access_path") == "" {
			t.Fatalf("span %s lacks replica/access_path attrs: %+v", c.Name, c.Attrs)
		}
	}
	if shardSpans != 4 {
		t.Fatalf("scatter has %d shard spans, want 4", shardSpans)
	}
	if sumBytes != resp.Result.Stats.BytesRead {
		t.Fatalf("shard spans' bytes sum to %d, query BytesRead is %d", sumBytes, resp.Result.Stats.BytesRead)
	}
}

// TestTraceFailoverEventOnReplicaKill kills a replica while it is executing
// its shard's partial; the query must still succeed (failover to the
// sibling) and the trace must show the retry as a "replica N failed" event.
// The kill is timed by polling replica health for in-flight work, so the
// test retries until a kill actually lands mid-query.
func TestTraceFailoverEventOnReplicaKill(t *testing.T) {
	s, r := shardedServer(t, Config{CacheEntries: -1})
	const sql = `SELECT sum(powerConsumed), count(*) FROM meterdata WHERE userId >= 1 AND userId <= 80`

	for attempt := 0; attempt < 10; attempt++ {
		type out struct {
			resp *Response
			err  error
		}
		ch := make(chan out, 1)
		go func() {
			resp, err := s.Query(context.Background(), Request{SQL: sql, Trace: true})
			ch <- out{resp, err}
		}()

		// Catch any replica with in-flight work and kill it under the query.
		killedShard, killedRep := -1, -1
		deadline := time.Now().Add(2 * time.Second)
	hunt:
		for time.Now().Before(deadline) {
			for _, sh := range r.Health() {
				for _, rep := range sh.Detail {
					if rep.Inflight > 0 {
						killedShard, killedRep = sh.Shard, rep.Replica
						r.Kill(killedShard, killedRep)
						break hunt
					}
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
		res := <-ch
		if killedShard >= 0 {
			r.Revive(killedShard, killedRep)
		}
		if res.err != nil {
			t.Fatalf("query must survive a single-replica kill: %v", res.err)
		}
		if killedShard < 0 {
			continue // the query outran the health poll; try again
		}
		found := false
		res.resp.Trace.Walk(func(sn *trace.SpanSnapshot) {
			for _, e := range sn.Events {
				if strings.Contains(e.Msg, fmt.Sprintf("replica %d failed", killedRep)) {
					found = true
				}
			}
		})
		if found {
			return
		}
		// The kill landed after the replica's partial finished: no failover
		// happened, which is fine — retry for a mid-flight hit.
	}
	t.Fatal("no attempt caught a mid-query replica kill with a failover event")
}

// TestTraceOverHTTP: the trace=1 query parameter returns the span tree in
// the JSON response; without it the field is absent.
func TestTraceOverHTTP(t *testing.T) {
	s := New(testWarehouse(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(q string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d: %s", q, resp.StatusCode, body)
		}
		return string(body)
	}
	url := "/query?q=" + strings.ReplaceAll("SELECT count(*) FROM meterdata", " ", "+")
	if body := get(url + "&trace=1"); !strings.Contains(body, `"trace"`) || !strings.Contains(body, `"name":"query"`) {
		t.Fatalf("traced response lacks the span tree:\n%s", body)
	}
	if body := get(url); strings.Contains(body, `"trace"`) {
		t.Fatalf("untraced response must omit the trace field:\n%s", body)
	}
}
