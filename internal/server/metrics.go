package server

import (
	"sync"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/hive"
)

// latencyBucketsMs are the upper bounds (inclusive, milliseconds) of the
// wall-latency histogram; observations above the last bound land in the
// implicit +Inf bucket.
var latencyBucketsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// metricSet accumulates per-scope query metrics (one instance server-wide,
// one per session). A plain mutex is fine: observation cost is trivial next
// to query execution.
type metricSet struct {
	mu          sync.Mutex
	queries     int64
	errors      int64
	timeouts    int64
	cacheHits   int64
	recordsRead int64
	bytesRead   int64
	rowsOut     int64
	simSeconds  float64
	wallSeconds float64
	hist        []int64 // len(latencyBucketsMs)+1, last is +Inf
	lastActive  time.Time
}

func newMetricSet() *metricSet {
	return &metricSet{hist: make([]int64, len(latencyBucketsMs)+1)}
}

// observe records one finished query. res may be nil (errors, timeouts).
func (m *metricSet) observe(wall time.Duration, res *hive.Result, cached bool, isTimeout bool, isErr bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	m.lastActive = time.Now()
	m.wallSeconds += wall.Seconds()
	ms := float64(wall.Microseconds()) / 1e3
	slot := len(latencyBucketsMs)
	for i, le := range latencyBucketsMs {
		if ms <= le {
			slot = i
			break
		}
	}
	m.hist[slot]++
	switch {
	case isTimeout:
		m.timeouts++
		m.errors++
	case isErr:
		m.errors++
	}
	if cached {
		m.cacheHits++
	}
	if res != nil {
		m.rowsOut += int64(res.Stats.RowsOut)
		// Cluster-side work (records, bytes, simulated seconds) happened
		// only when the query actually ran: a cache hit re-serves rows the
		// cluster already paid for, and must not inflate these totals.
		if !cached {
			m.recordsRead += res.Stats.RecordsRead
			m.bytesRead += res.Stats.BytesRead
			m.simSeconds += res.Stats.SimTotalSec()
		}
	}
}

// LatencyBucket is one cumulative histogram bucket.
type LatencyBucket struct {
	LeMs  float64 `json:"le_ms"` // 0 marks the +Inf bucket
	Count int64   `json:"count"`
}

// MetricsSnapshot is a point-in-time copy of a metric scope, JSON-ready for
// the /stats endpoint.
type MetricsSnapshot struct {
	Queries     int64   `json:"queries"`
	Errors      int64   `json:"errors"`
	Timeouts    int64   `json:"timeouts"`
	CacheHits   int64   `json:"cache_hits"`
	RecordsRead int64   `json:"records_read"`
	BytesRead   int64   `json:"bytes_read"`
	RowsOut     int64   `json:"rows_out"`
	// SimClusterSeconds is the paper's currency: total simulated cluster
	// time spent answering this scope's queries.
	SimClusterSeconds float64         `json:"sim_cluster_seconds"`
	WallSeconds       float64         `json:"wall_seconds"`
	LatencyP50Ms      float64         `json:"latency_p50_ms"`
	LatencyP95Ms      float64         `json:"latency_p95_ms"`
	LatencyP99Ms      float64         `json:"latency_p99_ms"`
	Latency           []LatencyBucket `json:"latency_histogram"`
	LastActive        time.Time       `json:"last_active,omitzero"`
}

func (m *metricSet) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := MetricsSnapshot{
		Queries:           m.queries,
		Errors:            m.errors,
		Timeouts:          m.timeouts,
		CacheHits:         m.cacheHits,
		RecordsRead:       m.recordsRead,
		BytesRead:         m.bytesRead,
		RowsOut:           m.rowsOut,
		SimClusterSeconds: m.simSeconds,
		WallSeconds:       m.wallSeconds,
		LastActive:        m.lastActive,
	}
	for i, n := range m.hist {
		le := 0.0 // +Inf bucket
		if i < len(latencyBucketsMs) {
			le = latencyBucketsMs[i]
		}
		snap.Latency = append(snap.Latency, LatencyBucket{LeMs: le, Count: n})
	}
	snap.LatencyP50Ms = quantileLocked(m.hist, m.queries, 0.50)
	snap.LatencyP95Ms = quantileLocked(m.hist, m.queries, 0.95)
	snap.LatencyP99Ms = quantileLocked(m.hist, m.queries, 0.99)
	return snap
}

// quantileLocked estimates a latency quantile by linear interpolation within
// the bucket that crosses the target rank. The +Inf bucket reports its lower
// bound (the estimate is then a floor, which is the honest direction).
func quantileLocked(hist []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range hist {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = latencyBucketsMs[i-1]
		}
		if i >= len(latencyBucketsMs) {
			return lo
		}
		hi := latencyBucketsMs[i]
		frac := (rank - float64(prev)) / float64(n)
		return lo + (hi-lo)*frac
	}
	return latencyBucketsMs[len(latencyBucketsMs)-1]
}
