package server

import (
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/hive"
)

// latencyBucketsMs are the upper bounds (inclusive, milliseconds) of the
// wall-latency histogram; observations above the last bound land in the
// implicit +Inf bucket.
var latencyBucketsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// pathMetrics accumulates per-access-path volumes: the paper's evaluation
// question — where do bytes and simulated time go, DGFIndex versus scan
// versus a Hive index — asked of the live serving traffic.
type pathMetrics struct {
	queries     int64
	recordsRead int64
	bytesRead   int64
	simSeconds  float64
}

// pathKey folds an access-path label to bounded cardinality for the per-path
// counters: the shard prefix ("sharded(2/4):dgfindex") and per-query detail
// (index names, partition counts) vary per query and would mint a metric
// series each, so they collapse to their family.
func pathKey(path string) string {
	if i := strings.Index(path, "):"); i >= 0 && strings.HasPrefix(path, "sharded(") {
		path = path[i+2:]
	}
	switch {
	case path == "":
		return "unknown"
	case strings.HasPrefix(path, "index:"):
		return "index"
	case strings.HasPrefix(path, "aggindex-rewrite:"):
		return "aggindex-rewrite"
	case strings.HasPrefix(path, "scan("):
		return "scan"
	}
	return path
}

// metricSet accumulates per-scope query metrics (one instance server-wide,
// one per session). A plain mutex is fine: observation cost is trivial next
// to query execution.
type metricSet struct {
	mu          sync.Mutex
	queries     int64
	errors      int64
	timeouts    int64
	cacheHits   int64
	recordsRead int64
	bytesRead   int64
	rowsOut     int64
	simSeconds  float64
	wallSeconds float64
	// queueSeconds is time spent waiting for a worker-pool slot, recorded
	// separately so admission pressure is not conflated with execution cost
	// (wallSeconds still covers the full request, queue wait included).
	queueSeconds float64
	hist         []int64 // len(latencyBucketsMs)+1, last is +Inf
	queueHist    []int64 // same bucket bounds, over queue wait
	paths        map[string]*pathMetrics
	lastActive   time.Time
}

func newMetricSet() *metricSet {
	return &metricSet{
		hist:      make([]int64, len(latencyBucketsMs)+1),
		queueHist: make([]int64, len(latencyBucketsMs)+1),
		paths:     make(map[string]*pathMetrics),
	}
}

// histSlot returns the bucket index for a millisecond observation.
func histSlot(ms float64) int {
	for i, le := range latencyBucketsMs {
		if ms <= le {
			return i
		}
	}
	return len(latencyBucketsMs)
}

// observe records one finished query. res may be nil (errors, timeouts);
// queued is the time the request waited for a worker-pool slot (zero for
// requests that never reached admission — parse errors, cache hits).
func (m *metricSet) observe(wall, queued time.Duration, res *hive.Result, cached bool, isTimeout bool, isErr bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	m.lastActive = time.Now()
	m.wallSeconds += wall.Seconds()
	m.queueSeconds += queued.Seconds()
	m.hist[histSlot(float64(wall.Microseconds())/1e3)]++
	m.queueHist[histSlot(float64(queued.Microseconds())/1e3)]++
	switch {
	case isTimeout:
		m.timeouts++
		m.errors++
	case isErr:
		m.errors++
	}
	if cached {
		m.cacheHits++
	}
	if res != nil {
		m.rowsOut += int64(res.Stats.RowsOut)
		// Cluster-side work (records, bytes, simulated seconds) happened
		// only when the query actually ran: a cache hit re-serves rows the
		// cluster already paid for, and must not inflate these totals.
		if !cached {
			m.recordsRead += res.Stats.RecordsRead
			m.bytesRead += res.Stats.BytesRead
			m.simSeconds += res.Stats.SimTotalSec()
			key := pathKey(res.Stats.AccessPath)
			pm := m.paths[key]
			if pm == nil {
				pm = &pathMetrics{}
				m.paths[key] = pm
			}
			pm.queries++
			pm.recordsRead += res.Stats.RecordsRead
			pm.bytesRead += res.Stats.BytesRead
			pm.simSeconds += res.Stats.SimTotalSec()
		}
	}
}

// LatencyBucket is one cumulative histogram bucket.
type LatencyBucket struct {
	LeMs  float64 `json:"le_ms"` // 0 marks the +Inf bucket
	Count int64   `json:"count"`
}

// PathSnapshot is the per-access-path slice of a metric scope.
type PathSnapshot struct {
	Path        string  `json:"path"`
	Queries     int64   `json:"queries"`
	RecordsRead int64   `json:"records_read"`
	BytesRead   int64   `json:"bytes_read"`
	SimSeconds  float64 `json:"sim_seconds"`
}

// MetricsSnapshot is a point-in-time copy of a metric scope, JSON-ready for
// the /stats endpoint.
type MetricsSnapshot struct {
	Queries     int64 `json:"queries"`
	Errors      int64 `json:"errors"`
	Timeouts    int64 `json:"timeouts"`
	CacheHits   int64 `json:"cache_hits"`
	RecordsRead int64 `json:"records_read"`
	BytesRead   int64 `json:"bytes_read"`
	RowsOut     int64 `json:"rows_out"`
	// SimClusterSeconds is the paper's currency: total simulated cluster
	// time spent answering this scope's queries.
	SimClusterSeconds float64 `json:"sim_cluster_seconds"`
	WallSeconds       float64 `json:"wall_seconds"`
	// QueueWaitSeconds is the share of WallSeconds spent waiting for a
	// worker-pool slot: WallSeconds − QueueWaitSeconds is execution wall.
	QueueWaitSeconds float64         `json:"queue_wait_seconds"`
	LatencyP50Ms     float64         `json:"latency_p50_ms"`
	LatencyP95Ms     float64         `json:"latency_p95_ms"`
	LatencyP99Ms     float64         `json:"latency_p99_ms"`
	Latency          []LatencyBucket `json:"latency_histogram"`
	QueueWait        []LatencyBucket `json:"queue_wait_histogram,omitempty"`
	Paths            []PathSnapshot  `json:"paths,omitempty"`
	LastActive       time.Time       `json:"last_active,omitzero"`
}

func bucketsLocked(hist []int64) []LatencyBucket {
	out := make([]LatencyBucket, 0, len(hist))
	for i, n := range hist {
		le := 0.0 // +Inf bucket
		if i < len(latencyBucketsMs) {
			le = latencyBucketsMs[i]
		}
		out = append(out, LatencyBucket{LeMs: le, Count: n})
	}
	return out
}

func (m *metricSet) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := MetricsSnapshot{
		Queries:           m.queries,
		Errors:            m.errors,
		Timeouts:          m.timeouts,
		CacheHits:         m.cacheHits,
		RecordsRead:       m.recordsRead,
		BytesRead:         m.bytesRead,
		RowsOut:           m.rowsOut,
		SimClusterSeconds: m.simSeconds,
		WallSeconds:       m.wallSeconds,
		QueueWaitSeconds:  m.queueSeconds,
		LastActive:        m.lastActive,
	}
	snap.Latency = bucketsLocked(m.hist)
	snap.QueueWait = bucketsLocked(m.queueHist)
	keys := make([]string, 0, len(m.paths))
	for k := range m.paths {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pm := m.paths[k]
		snap.Paths = append(snap.Paths, PathSnapshot{
			Path: k, Queries: pm.queries, RecordsRead: pm.recordsRead,
			BytesRead: pm.bytesRead, SimSeconds: pm.simSeconds,
		})
	}
	snap.LatencyP50Ms = quantileLocked(m.hist, m.queries, 0.50)
	snap.LatencyP95Ms = quantileLocked(m.hist, m.queries, 0.95)
	snap.LatencyP99Ms = quantileLocked(m.hist, m.queries, 0.99)
	return snap
}

// quantileLocked estimates a latency quantile by linear interpolation within
// the bucket that crosses the target rank. The +Inf bucket reports its lower
// bound (the estimate is then a floor, which is the honest direction).
func quantileLocked(hist []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range hist {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = latencyBucketsMs[i-1]
		}
		if i >= len(latencyBucketsMs) {
			return lo
		}
		hi := latencyBucketsMs[i]
		frac := (rank - float64(prev)) / float64(n)
		return lo + (hi-lo)*frac
	}
	// total exceeded the histogram's contents (callers may pass a total
	// tracked outside hist), so the rank landed past every bucket. Report
	// the lower bound of the highest populated bucket — the same floor the
	// +Inf branch above reports — rather than the last finite bound, which
	// overstates wildly when every observation sat in a low bucket (or in
	// +Inf, whose lower bound IS the last finite bound, but only then).
	for i := len(hist) - 1; i >= 0; i-- {
		if hist[i] == 0 {
			continue
		}
		if i == 0 {
			return 0
		}
		return latencyBucketsMs[i-1]
	}
	return 0
}
