// Package server is the concurrent query-serving subsystem in front of the
// embedded warehouse: the paper positions DGFIndex as what makes Hive viable
// for the State Grid's online analytics, where many operators issue
// multidimensional range queries against one shared meter table at once.
//
// The server adds the three things the bare library lacks for that setting:
//
//   - admission control: a bounded worker pool executes queries with a
//     configurable parallelism, a bounded wait queue sheds overload, and
//     shutdown drains in-flight work gracefully;
//   - caching: parsed statements are reused via an LRU plan cache, and
//     SELECT results are served from an LRU result cache keyed by
//     normalized SQL plus the read tables' version counters, so any DDL or
//     LOAD invalidates exactly the dependent entries;
//   - observability: per-session and server-wide metrics (query counts,
//     latency histogram, simulated cluster-seconds, records/bytes read,
//     cache hit rates) in the same terms as the paper's figures.
//
// An optional pacing knob converts each query's simulated cluster-seconds
// into wall-clock delay, modelling the remote 29-node cluster's latency;
// with pacing on, concurrent sessions overlap their cluster waits exactly
// the way concurrent Hive clients share a real cluster.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/shard"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/trace"
	"github.com/smartgrid-oss/dgfindex/internal/wal"
)

// Backend is the query store a Server fronts: a single *hive.Warehouse or a
// sharded fleet behind a *shard.Router. The serving layer only needs
// statement execution, row loading, version counters for cache keys, and
// catalog snapshots — everything else (admission, caching, metrics) is
// backend-agnostic, which is what lets one Server serve one warehouse today
// and N shards tomorrow without changing its callers.
type Backend interface {
	// ExecParsedContext executes an already-parsed statement under ctx: a
	// ctx that ends mid-scan must abort the underlying job (both provided
	// backends stop within one split boundary) and return an error wrapping
	// ctx.Err(), never a partial result.
	ExecParsedContext(ctx context.Context, stmt hive.Stmt, opts hive.ExecOptions) (*hive.Result, error)
	// LoadRowsByName appends rows to the named table.
	LoadRowsByName(table string, rows []storage.Row) error
	// TableVersions snapshots the named tables' mutation counters; the
	// counters must only ever grow (result-cache keys depend on it).
	TableVersions(names ...string) map[string]uint64
	// TableSchema returns the named table's column schema.
	TableSchema(name string) (*storage.Schema, error)
	// TableInfos snapshots the catalog for /tables.
	TableInfos() []hive.TableInfo
}

// Sentinel errors returned by Query.
var (
	// ErrOverloaded reports that the worker pool and its wait queue are
	// full; the caller should back off and retry.
	ErrOverloaded = errors.New("server: overloaded, admission queue full")
	// ErrClosed reports that the server is draining or closed.
	ErrClosed = errors.New("server: closed")
	// ErrQueryTimeout reports that the query exceeded its deadline. The
	// underlying job keeps its worker slot until it finishes; the slot is
	// then returned to the pool.
	ErrQueryTimeout = errors.New("server: query timeout")
)

// Config tunes a Server. The zero value selects the documented defaults.
type Config struct {
	// MaxConcurrent is the worker-pool size: how many queries execute in
	// parallel. Default 8.
	MaxConcurrent int
	// MaxQueue bounds how many admitted queries may wait for a worker
	// beyond the pool itself; past that Query returns ErrOverloaded.
	// Default 64.
	MaxQueue int
	// DefaultTimeout applies to requests that carry no timeout of their
	// own. Default 30s; negative disables.
	DefaultTimeout time.Duration
	// CacheEntries sizes the result cache (0 uses the default 256;
	// negative disables caching).
	CacheEntries int
	// MaxResultBytes caps the result cache by total row-payload bytes:
	// past the budget, least-recently-used entries evict until the cache
	// fits, and a single result larger than the budget is never cached.
	// Zero means no byte cap (the entry cap still applies); negative
	// disables result caching entirely.
	MaxResultBytes int64
	// PlanCacheEntries sizes the parsed-statement cache (0 uses the
	// default 512; negative disables).
	PlanCacheEntries int
	// SimPacing stretches each query by its simulated cluster time: a
	// query costing S simulated cluster-seconds sleeps S*SimPacing of
	// wall time inside its worker slot. Zero (the default) disables
	// pacing. Cache hits never pace — no cluster work happens.
	SimPacing time.Duration
	// SlowQueryMs is the flight recorder's slow threshold in milliseconds:
	// a query at or above it (or one that errors) has its trace retained.
	// Zero uses the default 500; negative records errored queries only.
	SlowQueryMs int
	// TraceRingSize bounds the flight recorder: the N most recent
	// slow/errored traces are kept. Zero uses the default 64; negative
	// disables the recorder entirely (queries are then only traced on
	// request via Request.Trace).
	TraceRingSize int
	// WALDir enables durable streaming ingest when non-empty: loads append
	// to per-shard write-ahead logs under this directory and background
	// appliers drain them (the backend must be a shard router). Empty
	// keeps the synchronous load path.
	WALDir string
	// FsyncPolicy selects WAL append durability: "always", "interval"
	// (default), or "off". Ignored without WALDir.
	FsyncPolicy string
	// MaxLoadBytes bounds a POST /load request body; larger bodies are
	// rejected with 413. Zero uses the default 32 MiB; negative disables
	// the bound.
	MaxLoadBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	switch {
	case c.CacheEntries == 0:
		c.CacheEntries = 256
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	}
	switch {
	case c.PlanCacheEntries == 0:
		c.PlanCacheEntries = 512
	case c.PlanCacheEntries < 0:
		c.PlanCacheEntries = 0
	}
	if c.MaxResultBytes < 0 {
		c.CacheEntries = 0
		c.MaxResultBytes = 0
	}
	if c.SlowQueryMs == 0 {
		c.SlowQueryMs = 500
	}
	switch {
	case c.TraceRingSize == 0:
		c.TraceRingSize = 64
	case c.TraceRingSize < 0:
		c.TraceRingSize = 0
	}
	if c.MaxLoadBytes == 0 {
		c.MaxLoadBytes = 32 << 20
	}
	return c
}

// Request is one query submission.
type Request struct {
	// SQL is the HiveQL statement to execute.
	SQL string
	// Session attributes the query to a session for metrics; empty means
	// the "default" session.
	Session string
	// Timeout overrides Config.DefaultTimeout when positive; negative
	// disables the deadline for this request.
	Timeout time.Duration
	// NoCache bypasses the result cache for this request (both lookup and
	// fill).
	NoCache bool
	// Opts carries planner ablation flags. Results are cached only for
	// zero-valued Opts.
	Opts hive.ExecOptions
	// Trace asks for the query's span tree in Response.Trace. Traced
	// requests skip the result cache's fast path only in the sense that a
	// cache hit still produces a (shallow) trace showing the hit.
	Trace bool
}

// Response is the outcome of one query.
type Response struct {
	// Result is the statement outcome. Cached responses share one Result
	// across callers: treat Columns and Rows as read-only.
	Result *hive.Result
	// Cached reports a result-cache hit.
	Cached bool
	// Session is the session the query was attributed to.
	Session string
	// Wall is the end-to-end service time, queueing included.
	Wall time.Duration
	// Trace is the query's span tree, present only when Request.Trace was
	// set. Its root wall duration equals Wall exactly.
	Trace *trace.SpanSnapshot
}

// Session carries per-session serving metrics.
type Session struct {
	id      string
	created time.Time
	m       *metricSet
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Created returns the session creation time.
func (s *Session) Created() time.Time { return s.created }

// Snapshot returns the session's metrics.
func (s *Session) Snapshot() MetricsSnapshot { return s.m.snapshot() }

// Server turns a Backend (one warehouse or a sharded fleet) into a
// concurrent query service.
type Server struct {
	b   Backend
	cfg Config

	sem chan struct{} // worker slots

	mu         sync.Mutex // guards draining, admitted, counters below
	cond       *sync.Cond // signalled on admitted decrements
	draining   bool
	admitted   int // admitted queries not yet fully finished (queued, running, or abandoned-by-timeout)
	rejected   int64
	loads      int64
	rowsLoaded int64

	results *resultCache
	plans   *lru[hive.Stmt]

	sessMu   sync.Mutex
	sessions map[string]*Session

	metrics  *metricSet
	recorder *trace.Recorder // nil when TraceRingSize < 0
	started  time.Time

	// Durable ingest (Config.WALDir). walBE is the backend's WAL surface
	// when enabled; walErr records an attach failure — loads then fail with
	// it instead of silently falling back to a non-durable path.
	walBE       durableBackend
	walErr      error
	rowsApplied atomic.Int64 // rows drained by WAL appliers into warehouses
}

// New wraps a warehouse in a server. The warehouse stays usable directly —
// its own locking keeps direct access safe — but loads performed behind the
// server's back are only reflected in cache keys (via table versions), not
// in the server's load metrics.
func New(w *hive.Warehouse, cfg Config) *Server {
	return NewWithBackend(w, cfg)
}

// NewWithBackend wraps any Backend — a bare warehouse or a shard router —
// in a server. With Config.WALDir set it also enables durable ingest on the
// backend; an attach failure is deferred into WALError (and every load)
// rather than panicking, because construction has no error return.
func NewWithBackend(b Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		b:        b,
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		results:  newResultCache(cfg.CacheEntries, cfg.MaxResultBytes),
		plans:    newLRU[hive.Stmt](cfg.PlanCacheEntries),
		sessions: map[string]*Session{},
		metrics:  newMetricSet(),
		recorder: trace.NewRecorder(cfg.TraceRingSize),
		started:  time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.WALDir != "" {
		s.attachWAL(cfg)
	}
	return s
}

// durableBackend is the optional Backend extension durable ingest needs —
// the shard router implements it. A Backend without it cannot take a WAL.
type durableBackend interface {
	EnableWAL(shard.WALConfig) error
	LoadRowsDurable(ctx context.Context, table string, rows []storage.Row, sync bool) (shard.LoadAck, error)
	WALStats() []wal.ShardStats
	DrainWAL(ctx context.Context) error
	CloseWAL() error
}

func (s *Server) attachWAL(cfg Config) {
	db, ok := s.b.(durableBackend)
	if !ok {
		s.walErr = fmt.Errorf("server: Config.WALDir requires a shard-router backend (got %T); run even a 1-shard fleet through shard.New", s.b)
		return
	}
	policy, err := wal.ParsePolicy(cfg.FsyncPolicy)
	if err != nil {
		s.walErr = err
		return
	}
	err = db.EnableWAL(shard.WALConfig{
		Dir:   cfg.WALDir,
		Fsync: policy,
		// Invalidation at apply time: a cached result only goes stale when
		// rows actually land in the warehouse, which is also the moment
		// table versions move.
		OnApply: func(table string, rows int) {
			s.results.invalidateTables([]string{strings.ToLower(table)})
			s.rowsApplied.Add(int64(rows))
		},
		Recorder: s.recorder,
	})
	if err != nil {
		s.walErr = err
		return
	}
	s.walBE = db
}

// WALError reports why durable ingest could not be enabled (nil when it is
// working or was never requested). Daemons should treat a non-nil value as
// a boot failure: loads will refuse rather than degrade to non-durable.
func (s *Server) WALError() error { return s.walErr }

// WALStats snapshots the backend's per-shard WAL state (nil without a WAL).
func (s *Server) WALStats() []wal.ShardStats {
	if s.walBE == nil {
		return nil
	}
	return s.walBE.WALStats()
}

// Backend returns the wrapped backend.
func (s *Server) Backend() Backend { return s.b }

// Warehouse returns the wrapped warehouse, or nil when the backend is not a
// bare *hive.Warehouse (e.g. a shard router — use Backend then).
func (s *Server) Warehouse() *hive.Warehouse {
	w, _ := s.b.(*hive.Warehouse)
	return w
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// maxSessions bounds the session map: ids arrive from untrusted HTTP
// parameters, and per-session metric sets must not grow memory (or the
// /stats payload) without limit. Past the cap, new ids share one overflow
// session.
const maxSessions = 1024

// Session returns the named session, creating it on first use. An empty id
// maps to "default"; once maxSessions distinct ids exist, further new ids
// are pooled into the "overflow" session.
func (s *Server) Session(id string) *Session {
	if id == "" {
		id = "default"
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		if len(s.sessions) >= maxSessions {
			id = "overflow"
			if sess, ok = s.sessions[id]; ok {
				return sess
			}
		}
		sess = &Session{id: id, created: time.Now(), m: newMetricSet()}
		s.sessions[id] = sess
	}
	return sess
}

// admit reserves an admission slot; release returns it.
func (s *Server) admit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrClosed
	}
	if s.admitted >= s.cfg.MaxConcurrent+s.cfg.MaxQueue {
		s.rejected++
		return ErrOverloaded
	}
	s.admitted++
	return nil
}

func (s *Server) release() {
	s.mu.Lock()
	s.admitted--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Query executes one statement under admission control, consulting the plan
// and result caches. It blocks while waiting for a worker slot (until the
// request deadline) and is safe to call from any number of goroutines.
func (s *Server) Query(ctx context.Context, req Request) (*Response, error) {
	start := time.Now()
	sess := s.Session(req.Session)

	// The root span opens whenever anyone could want the tree: the caller
	// asked (Trace), or the flight recorder is armed — it cannot know in
	// advance which queries will turn out slow, so it traces all of them.
	var root *trace.Span
	if req.Trace || s.recorder != nil {
		root = trace.NewAt("query", start)
		root.Set("session", sess.id)
	}

	if err := s.admit(); err != nil {
		return nil, err
	}
	handoff := false // true once a worker goroutine owns the admission slot
	defer func() {
		if !handoff {
			s.release()
		}
	}()

	var queued time.Duration
	finish := func(res *hive.Result, cached bool, err error) (*Response, error) {
		wall := time.Since(start)
		isTimeout := errors.Is(err, ErrQueryTimeout)
		s.metrics.observe(wall, queued, res, cached, isTimeout, err != nil)
		sess.m.observe(wall, queued, res, cached, isTimeout, err != nil)
		var snap *trace.SpanSnapshot
		if root != nil {
			// Finishing at start+wall makes the root's wall duration equal
			// Response.Wall exactly, not up to a second clock read.
			root.FinishAt(start.Add(wall))
			sn := root.Snapshot()
			snap = &sn
			s.record(req.SQL, sess.id, wall, err, sn)
		}
		if err != nil {
			return nil, err
		}
		resp := &Response{Result: res, Cached: cached, Session: sess.id, Wall: wall}
		if req.Trace {
			resp.Trace = snap
		}
		return resp, nil
	}

	// Plan cache: parse once per normal form, reuse across sessions.
	psp := root.Child("plan")
	norm, err := hive.Normalize(req.SQL)
	if err != nil {
		psp.Finish()
		return finish(nil, false, err)
	}
	stmt, ok := s.plans.get(norm)
	psp.Set("plan_cache_hit", ok)
	if !ok {
		stmt, err = hive.Parse(req.SQL)
		if err != nil {
			psp.Finish()
			return finish(nil, false, err)
		}
		s.plans.put(norm, stmt)
	}
	psp.Finish()

	tables := hive.StatementTables(stmt)
	readOnly := hive.IsReadOnly(stmt)
	// Only plain SELECTs are cached: their keys carry the read tables'
	// versions, which is what makes invalidation sound. Catalog statements
	// (SHOW TABLES, DESCRIBE) reference no versioned table — caching them
	// could serve a stale catalog — and they cost nothing to re-run.
	_, isSelect := stmt.(*hive.SelectStmt)
	cacheable := readOnly && isSelect && !req.NoCache && req.Opts.IsZero() && s.cfg.CacheEntries > 0

	// Result cache. The key carries the read tables' versions as of *before*
	// execution: versions only grow, so a hit proves no mutation happened
	// between key construction and lookup and the entry is exact.
	var key string
	if cacheable {
		csp := root.Child("result_cache")
		key = cacheKey(norm, tables, s.b.TableVersions(tables...))
		res, hit := s.results.get(key)
		csp.Set("hit", hit)
		csp.Finish()
		if hit {
			return finish(res, true, nil)
		}
	}

	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Wait for a worker slot; the wait is accounted separately from
	// execution (MetricsSnapshot.QueueWaitSeconds) so a saturated pool shows
	// up as admission pressure, not as slow queries.
	asp := root.Child("admission")
	queueStart := time.Now()
	select {
	case s.sem <- struct{}{}:
		queued = time.Since(queueStart)
		asp.Finish()
	case <-ctx.Done():
		queued = time.Since(queueStart)
		asp.Eventf("gave up waiting for a worker slot")
		asp.Finish()
		return finish(nil, false, ctxError(ctx.Err()))
	}

	// Execute on a worker goroutine that owns the slot and the admission
	// reservation. The backend call runs under the request ctx, so a missed
	// deadline or an abandoning caller actually aborts the scan (within one
	// split boundary) instead of the job holding its worker slot to
	// completion; the goroutine frees its resources as soon as the abort
	// surfaces, keeping drain and admission accounting exact.
	type outcome struct {
		res *hive.Result
		err error
	}
	handoff = true
	ch := make(chan outcome, 1)
	// The backend call runs under the root span, so the router's scatter and
	// each warehouse's execution hang their child spans off this request's
	// tree (a timed-out caller snapshots the tree mid-flight; spans are
	// concurrency-safe and unfinished ones report elapsed time).
	ectx := trace.NewContext(ctx, root)
	go func() {
		defer func() {
			<-s.sem
			s.release()
		}()
		res, err := s.b.ExecParsedContext(ectx, stmt, req.Opts)
		if err == nil && s.cfg.SimPacing > 0 {
			// Model the remote cluster: hold the worker slot for the
			// query's simulated duration.
			pace := time.Duration(res.Stats.SimTotalSec() * float64(s.cfg.SimPacing))
			if pace > 0 {
				timer := time.NewTimer(pace)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
				}
			}
		}
		ch <- outcome{res, err}
	}()

	select {
	case out := <-ch:
		if out.err != nil {
			return finish(nil, false, ctxError(out.err))
		}
		if cacheable {
			s.results.put(key, tables, out.res)
		}
		if !readOnly {
			s.results.invalidateTables(tables)
		}
		return finish(out.res, false, nil)
	case <-ctx.Done():
		return finish(nil, false, ctxError(ctx.Err()))
	}
}

// record feeds the flight recorder: a finished query whose wall time crossed
// the slow threshold, or one that errored, has its trace retained.
func (s *Server) record(sql, session string, wall time.Duration, err error, snap trace.SpanSnapshot) {
	if s.recorder == nil {
		return
	}
	slow := s.cfg.SlowQueryMs > 0 && wall >= time.Duration(s.cfg.SlowQueryMs)*time.Millisecond
	if !slow && err == nil {
		return
	}
	rec := trace.Record{
		Time:    time.Now(),
		SQL:     sql,
		Session: session,
		WallMs:  float64(wall.Microseconds()) / 1e3,
		Slow:    slow,
		Trace:   snap,
	}
	if err != nil {
		rec.Error = err.Error()
	}
	s.recorder.Add(rec)
}

// SlowTraces returns the flight recorder's retained records, newest first
// (nil when the recorder is disabled). Served at /debug/slow and dumped on
// SIGQUIT by the daemon.
func (s *Server) SlowTraces() []trace.Record {
	return s.recorder.Snapshot()
}

// ctxError is the one place a context termination maps onto the server's
// sentinel errors, shared by Query, QueryStream and the HTTP handlers. It
// classifies both forms an expired request takes — the request ctx's own
// Err(), and the wrapped ctx error a mid-scan abort bubbles up through the
// execution stack — so a missed deadline is always ErrQueryTimeout (counted
// as a timeout in metrics, HTTP 504) no matter where the deadline caught
// the query, and a caller cancellation (an HTTP client disconnecting
// mid-scan) is always a cancellation, not a timeout. Errors unrelated to a
// context pass through unchanged.
func ctxError(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrQueryTimeout):
		return err
	case errors.Is(err, context.DeadlineExceeded):
		// The deadline error is deliberately flattened: ErrQueryTimeout must
		// be the only sentinel callers can errors.Is against, or retry logic
		// keyed on context.DeadlineExceeded would fire on server-side
		// per-query timeouts too.
		//dgflint:ignore errwrap ErrQueryTimeout must stay the only unwrappable sentinel
		return fmt.Errorf("%w: %v", ErrQueryTimeout, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("server: request canceled: %w", err)
	default:
		return err
	}
}

// cacheKey renders "normalized sql @ table:version,..." deterministically.
func cacheKey(norm string, tables []string, versions map[string]uint64) string {
	names := append([]string(nil), tables...)
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(norm)
	b.WriteString(" @ ")
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%d", n, versions[n])
	}
	return b.String()
}

// replicaHealthReporter is the optional Backend extension a replicated
// shard router implements: per-shard replica-set health for /stats and
// /healthz. A Backend without it (a bare warehouse, an unsharded fleet)
// simply reports no shard section.
type replicaHealthReporter interface {
	Health() []shard.SetHealth
}

// ShardHealth returns the backend's per-shard replica health, or nil when
// the backend is not a replicated router.
func (s *Server) ShardHealth() []shard.SetHealth {
	if hr, ok := s.b.(replicaHealthReporter); ok {
		return hr.Health()
	}
	return nil
}

// streamer is the optional Backend extension for cursor-driven streaming.
// Both provided backends (warehouse and shard router) implement it; a
// Backend without it falls back to full execution replayed through a cursor.
type streamer interface {
	SelectCursor(ctx context.Context, stmt *hive.SelectStmt, opts hive.ExecOptions) (hive.Cursor, error)
}

// Stream is one in-flight streaming query: the cursor plus the serving
// resources it holds (a worker slot, an admission reservation, the request
// deadline). The caller must Close it — that aborts an unfinished scan,
// releases the slot, and records the query in the serving metrics. Close is
// idempotent.
type Stream struct {
	hive.Cursor
	// Session is the session the query is attributed to.
	Session string

	s      *Server
	sess   *Session
	cancel context.CancelFunc
	start  time.Time
	queued time.Duration
	sql    string
	root   *trace.Span // nil when neither tracing nor the recorder is on
	once   sync.Once
}

// Close aborts the scan if still running, releases the worker slot and
// admission reservation, and observes the final (possibly partial) stats in
// the server and session metrics.
func (st *Stream) Close() error {
	st.once.Do(func() {
		st.Cursor.Close()
		st.cancel()
		stats := st.Cursor.Stats()
		err := ctxError(st.Cursor.Err())
		res := &hive.Result{Stats: stats}
		wall := time.Since(st.start)
		isTimeout := errors.Is(err, ErrQueryTimeout)
		st.s.metrics.observe(wall, st.queued, res, false, isTimeout, err != nil)
		st.sess.m.observe(wall, st.queued, res, false, isTimeout, err != nil)
		if st.root != nil {
			st.root.FinishAt(st.start.Add(wall))
			st.s.record(st.sql, st.sess.id, wall, err, st.root.Snapshot())
		}
		<-st.s.sem
		st.s.release()
	})
	return nil
}

// TraceSnapshot returns the stream's span tree so far, or nil when the
// stream is untraced. After Close the tree is final; before it, running
// spans report their elapsed time.
func (st *Stream) TraceSnapshot() *trace.SpanSnapshot {
	if st.root == nil {
		return nil
	}
	sn := st.root.Snapshot()
	return &sn
}

// Err returns the scan's terminal error mapped onto the server's sentinel
// errors (a mid-scan deadline becomes ErrQueryTimeout, exactly as it does
// for a non-streaming Query).
func (st *Stream) Err() error { return ctxError(st.Cursor.Err()) }

// QueryStream executes one SELECT under admission control and returns a
// Stream delivering rows as the scan produces them. Streaming queries
// bypass the result cache in both directions (there is no materialized
// result to cache) but share the plan cache, the worker pool, and the
// timeout discipline with Query: the request ctx plus the configured
// timeout bound the whole stream, and cancelling either aborts the scan
// within one split boundary.
func (s *Server) QueryStream(ctx context.Context, req Request) (*Stream, error) {
	start := time.Now()
	sess := s.Session(req.Session)

	var root *trace.Span
	if req.Trace || s.recorder != nil {
		root = trace.NewAt("query", start)
		root.Set("session", sess.id)
		root.Set("stream", true)
	}

	if err := s.admit(); err != nil {
		return nil, err
	}
	admitted := true
	defer func() {
		if admitted {
			s.release()
		}
	}()
	var queued time.Duration
	// fail observes the error in the metrics exactly as Query's finish
	// does, so /stats error and timeout rates cannot diverge between the
	// streaming and non-streaming paths.
	fail := func(err error) (*Stream, error) {
		err = ctxError(err)
		wall := time.Since(start)
		isTimeout := errors.Is(err, ErrQueryTimeout)
		s.metrics.observe(wall, queued, nil, false, isTimeout, true)
		sess.m.observe(wall, queued, nil, false, isTimeout, true)
		if root != nil {
			root.FinishAt(start.Add(wall))
			s.record(req.SQL, sess.id, wall, err, root.Snapshot())
		}
		return nil, err
	}

	psp := root.Child("plan")
	norm, err := hive.Normalize(req.SQL)
	if err != nil {
		psp.Finish()
		return fail(err)
	}
	stmt, ok := s.plans.get(norm)
	psp.Set("plan_cache_hit", ok)
	if !ok {
		stmt, err = hive.Parse(req.SQL)
		if err != nil {
			psp.Finish()
			return fail(err)
		}
		s.plans.put(norm, stmt)
	}
	psp.Finish()
	sel, isSelect := stmt.(*hive.SelectStmt)
	if !isSelect {
		return fail(fmt.Errorf("server: only SELECT statements can stream (got %T)", stmt))
	}

	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	var cancel context.CancelFunc = func() {}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}

	// Wait for a worker slot; the stream holds it until Close.
	asp := root.Child("admission")
	queueStart := time.Now()
	select {
	case s.sem <- struct{}{}:
		queued = time.Since(queueStart)
		asp.Finish()
	case <-ctx.Done():
		queued = time.Since(queueStart)
		asp.Eventf("gave up waiting for a worker slot")
		asp.Finish()
		cancel()
		return fail(ctx.Err())
	}

	ectx := trace.NewContext(ctx, root)
	var cur hive.Cursor
	if sb, ok := s.b.(streamer); ok {
		cur, err = sb.SelectCursor(ectx, sel, req.Opts)
	} else {
		// Fallback for custom backends: run to completion, replay the rows.
		var res *hive.Result
		res, err = s.b.ExecParsedContext(ectx, sel, req.Opts)
		if err == nil {
			cur = hive.NewRowsCursor(res)
		}
	}
	if err != nil {
		<-s.sem
		cancel()
		return fail(err)
	}
	admitted = false // the Stream owns the reservation now
	return &Stream{
		Cursor:  cur,
		Session: sess.id,
		s:       s,
		sess:    sess,
		cancel:  cancel,
		start:   start,
		queued:  queued,
		sql:     req.SQL,
		root:    root,
	}, nil
}

// LoadResult describes one acknowledged load.
type LoadResult struct {
	// Invalidated is how many cached results the load evicted at ack time
	// (with a WAL, eviction mostly happens later, at apply time).
	Invalidated int
	// Durable is true when the load went through the write-ahead log.
	Durable bool
	// Applied is true once the rows are confirmed queryable: always for the
	// synchronous path, only for sync=true acks on the WAL path.
	Applied bool
	// LSN is the highest log sequence number the load was assigned (WAL
	// path only).
	LSN uint64
}

// LoadRowsCtx appends rows to the named table through the server, counting
// the load in the serving metrics and evicting dependent cache entries.
// With durable ingest enabled the call returns once the rows are logged on
// every live replica (sync=false) or applied everywhere (sync=true, bounded
// by ctx); without a WAL it applies synchronously and sync is moot.
func (s *Server) LoadRowsCtx(ctx context.Context, table string, rows []storage.Row, sync bool) (LoadResult, error) {
	if err := s.admit(); err != nil {
		return LoadResult{}, err
	}
	defer s.release()
	if s.walErr != nil {
		return LoadResult{}, fmt.Errorf("server: durable ingest unavailable: %w", s.walErr)
	}
	var out LoadResult
	if s.walBE != nil {
		var span *trace.Span
		if s.recorder != nil && trace.FromContext(ctx) == nil {
			span = trace.New("load")
			span.Set("table", table)
			span.Set("rows", len(rows))
			ctx = trace.NewContext(ctx, span)
			defer span.Finish()
		}
		ack, err := s.walBE.LoadRowsDurable(ctx, table, rows, sync)
		if err != nil {
			return LoadResult{}, err
		}
		out = LoadResult{Durable: true, Applied: ack.Applied, LSN: ack.MaxLSN}
	} else {
		if err := s.b.LoadRowsByName(table, rows); err != nil {
			return LoadResult{}, err
		}
		out.Applied = true
	}
	out.Invalidated = s.results.invalidateTables([]string{strings.ToLower(table)})
	s.mu.Lock()
	s.loads++
	s.rowsLoaded += int64(len(rows))
	s.mu.Unlock()
	return out, nil
}

// LoadRows appends rows to the named table through the server, so the load
// is counted in the serving metrics (Snapshot.Loads, Snapshot.RowsLoaded)
// and dependent cache entries are evicted eagerly. (Loads made directly on
// the backend stay correct — version-qualified keys can never serve stale
// data — but bypass both.) It returns how many cached results the load
// invalidated, so operators can watch invalidation churn under load.
//
//dgflint:compat ctx-free convenience wrapper over LoadRowsCtx
func (s *Server) LoadRows(table string, rows []storage.Row) (int, error) {
	res, err := s.LoadRowsCtx(context.Background(), table, rows, false)
	return res.Invalidated, err
}

// Invalidate evicts cached results that read any of the named tables. Call
// it after mutating the warehouse directly (not through the server).
func (s *Server) Invalidate(tables ...string) int {
	lowered := make([]string, len(tables))
	for i, t := range tables {
		lowered[i] = strings.ToLower(t)
	}
	return s.results.invalidateTables(lowered)
}

// Close stops admitting new queries and waits until every admitted query —
// queued, running, or abandoned by a timed-out caller — has finished, or
// until ctx expires (the context's error is returned and workers keep
// draining in the background). With durable ingest enabled it then drains
// the WAL — every acknowledged load is applied — and closes the logs;
// records it could not apply before ctx expired stay logged and replay on
// the next boot.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.admitted > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.walBE != nil {
		if err := s.walBE.DrainWAL(ctx); err != nil {
			s.walBE.CloseWAL() // flushes; undrained records replay on reboot
			return err
		}
		return s.walBE.CloseWAL()
	}
	return nil
}

// Draining reports whether Close has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// InFlight returns the number of admitted, unfinished queries.
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admitted
}

// Snapshot is the full server state for /stats.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	InFlight      int     `json:"in_flight"`
	Rejected      int64   `json:"rejected"`
	Loads         int64   `json:"loads"`
	RowsLoaded    int64   `json:"rows_loaded"`
	// ResultInvalidations counts cached results evicted because a table
	// they read mutated (LOAD, DDL, or explicit Invalidate) — the
	// invalidation churn of the serving fleet.
	ResultInvalidations int64 `json:"result_invalidations"`
	// SlowTraces counts flight-recorder records ever taken (including
	// records the ring has since evicted).
	SlowTraces    int64                      `json:"slow_traces"`
	MaxConcurrent int                        `json:"max_concurrent"`
	MaxQueue      int                        `json:"max_queue"`
	Server        MetricsSnapshot            `json:"server"`
	Sessions      map[string]MetricsSnapshot `json:"sessions"`
	ResultCache   CacheStats                 `json:"result_cache"`
	PlanCache     CacheStats                 `json:"plan_cache"`
	// Shards reports per-shard replica-set health when the backend is a
	// replicated shard router (absent otherwise): replicas per shard, how
	// many are live, and each replica's failure/ejection record.
	Shards []shard.SetHealth `json:"shards,omitempty"`
	// RowsApplied counts rows the WAL appliers have drained into the
	// warehouses, once per replica that applied them (absent without
	// durable ingest).
	RowsApplied int64 `json:"rows_applied,omitempty"`
	// WAL reports per-shard per-replica log positions — depth, applied LSN
	// lag, hinted and replayed records — when durable ingest is enabled.
	WAL []wal.ShardStats `json:"wal,omitempty"`
}

// Stats snapshots the server-wide and per-session metrics.
func (s *Server) Stats() Snapshot {
	s.mu.Lock()
	rejected, inflight, draining := s.rejected, s.admitted, s.draining
	loads, rowsLoaded := s.loads, s.rowsLoaded
	s.mu.Unlock()
	sessions := map[string]MetricsSnapshot{}
	s.sessMu.Lock()
	for id, sess := range s.sessions {
		sessions[id] = sess.m.snapshot()
	}
	s.sessMu.Unlock()
	ph, pm, pe := s.plans.stats()
	rc := s.results.stats()
	return Snapshot{
		UptimeSeconds:       time.Since(s.started).Seconds(),
		Draining:            draining,
		InFlight:            inflight,
		Rejected:            rejected,
		Loads:               loads,
		RowsLoaded:          rowsLoaded,
		ResultInvalidations: rc.Invalidations,
		SlowTraces:          s.recorder.Total(),
		MaxConcurrent:       s.cfg.MaxConcurrent,
		MaxQueue:            s.cfg.MaxQueue,
		Server:              s.metrics.snapshot(),
		Sessions:            sessions,
		ResultCache:         rc,
		PlanCache:           CacheStats{Entries: s.plans.len(), Hits: ph, Misses: pm, Evictions: pe},
		Shards:              s.ShardHealth(),
		RowsApplied:         s.rowsApplied.Load(),
		WAL:                 s.WALStats(),
	}
}
