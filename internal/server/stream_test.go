package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestQueryStreamDeliversRows: the programmatic streaming API delivers the
// same row count as Query, holds a worker slot only while open, and records
// the query in the metrics at Close.
func TestQueryStreamDeliversRows(t *testing.T) {
	s := New(testWarehouse(t), Config{MaxConcurrent: 2})
	want := mustQuery(t, s, `SELECT userId, powerConsumed FROM meterdata`)

	st, err := s.QueryStream(context.Background(), Request{SQL: `SELECT userId, powerConsumed FROM meterdata`})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for st.Next() {
		n++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(want.Result.Rows) {
		t.Fatalf("streamed %d rows, Query returned %d", n, len(want.Result.Rows))
	}
	if got := s.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d while stream open, want 1", got)
	}
	st.Close()
	if got := s.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after Close, want 0", got)
	}
	if snap := s.Stats(); snap.Server.Queries < 2 {
		t.Fatalf("stream not observed in metrics: %+v", snap.Server)
	}
}

// TestQueryStreamOnlySelect: non-SELECT statements cannot stream and the
// admission slot is returned.
func TestQueryStreamOnlySelect(t *testing.T) {
	s := New(testWarehouse(t), Config{MaxConcurrent: 1})
	if _, err := s.QueryStream(context.Background(), Request{SQL: `SHOW TABLES`}); err == nil {
		t.Fatal("streaming SHOW TABLES succeeded")
	}
	if got := s.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after rejected stream, want 0", got)
	}
	// The one worker slot must still be available.
	mustQuery(t, s, `SELECT count(*) FROM meterdata`)
}

// TestQueryDeadlineMapsToTimeout: an expired request deadline surfaces as
// ErrQueryTimeout no matter where it catches the query (admission wait or
// mid-scan abort), and the metrics count it as a timeout.
func TestQueryDeadlineMapsToTimeout(t *testing.T) {
	s := New(testWarehouse(t), Config{MaxConcurrent: 2})
	_, err := s.Query(context.Background(), Request{
		SQL:     `SELECT count(*) FROM meterdata`,
		Timeout: time.Nanosecond,
	})
	if !errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("err = %v, want ErrQueryTimeout", err)
	}
	if snap := s.Stats(); snap.Server.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", snap.Server.Timeouts)
	}

	// A caller cancellation is a cancellation, not a timeout.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = s.Query(ctx, Request{SQL: `SELECT count(*) FROM meterdata`})
	if err == nil || errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("cancelled request err = %v, want a non-timeout error", err)
	}
	if snap := s.Stats(); snap.Server.Timeouts != 1 {
		t.Fatalf("cancellation counted as timeout: %+v", snap.Server)
	}
}

// TestHTTPStreamNDJSON: /query?stream=ndjson frames the result as one
// header line, one line per row, and a trailer carrying done + final stats.
func TestHTTPStreamNDJSON(t *testing.T) {
	s := New(testWarehouse(t), Config{MaxConcurrent: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + `/query?stream=ndjson&q=` +
		strings.ReplaceAll(`SELECT userId, powerConsumed FROM meterdata WHERE userId<=5`, " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) < 2 {
		t.Fatalf("got %d NDJSON lines", len(lines))
	}
	var header struct {
		Columns []string `json:"columns"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil || len(header.Columns) != 2 {
		t.Fatalf("bad header line %q: %v", lines[0], err)
	}
	var trailer struct {
		Done     bool   `json:"done"`
		RowCount int    `json:"row_count"`
		Error    string `json:"error"`
		Stats    struct {
			AccessPath  string `json:"access_path"`
			RecordsRead int64  `json:"records_read"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("bad trailer %q: %v", lines[len(lines)-1], err)
	}
	if !trailer.Done || trailer.Error != "" {
		t.Fatalf("trailer = %+v", trailer)
	}
	if got := len(lines) - 2; got != trailer.RowCount {
		t.Fatalf("trailer counts %d rows, body has %d", trailer.RowCount, got)
	}
	if trailer.Stats.AccessPath == "" || trailer.Stats.RecordsRead == 0 {
		t.Fatalf("trailer stats empty: %+v", trailer.Stats)
	}

	// The worker slot is back: the server still answers.
	if s.InFlight() != 0 {
		t.Fatalf("InFlight = %d after stream finished", s.InFlight())
	}

	// An unknown stream mode is a 400.
	bad, err := http.Get(srv.URL + `/query?stream=csv&q=SELECT+count(*)+FROM+meterdata`)
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown stream mode status %d", bad.StatusCode)
	}
}

// TestHTTPStreamClientDisconnect: a client that walks away mid-stream
// cancels the scan; the server releases the slot and keeps serving.
func TestHTTPStreamClientDisconnect(t *testing.T) {
	s := New(testWarehouse(t), Config{MaxConcurrent: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		srv.URL+`/query?stream=ndjson&q=SELECT+userId+FROM+meterdata`, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	// Read the header line, then disconnect.
	buf := make([]byte, 1)
	resp.Body.Read(buf)
	cancel()
	resp.Body.Close()

	// The slot must come back (MaxConcurrent is 1, so a stuck stream would
	// deadlock this query).
	deadline := time.Now().Add(10 * time.Second)
	for s.InFlight() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream slot never released; InFlight = %d", s.InFlight())
		}
		time.Sleep(5 * time.Millisecond)
	}
	mustQuery(t, s, `SELECT count(*) FROM meterdata`)
}
