package server

import (
	"io"
	"strconv"

	"github.com/smartgrid-oss/dgfindex/internal/trace"
)

// WriteMetrics renders the server's metrics in Prometheus text exposition
// format (the GET /metrics body). It draws from the same Stats() snapshot
// /stats serves, so the two endpoints can never disagree on a counter.
func (s *Server) WriteMetrics(w io.Writer) error {
	snap := s.Stats()
	m := snap.Server
	p := trace.NewPromWriter(w)

	p.Gauge("dgf_uptime_seconds", "Seconds since the server started.", nil, snap.UptimeSeconds)
	p.Gauge("dgf_draining", "1 while the server is draining for shutdown.", nil, boolGauge(snap.Draining))
	p.Gauge("dgf_in_flight", "Admitted queries not yet finished (queued or executing).", nil, float64(snap.InFlight))
	// Executing queries hold worker slots; anything admitted beyond that is
	// waiting in the queue.
	executing := len(s.sem)
	depth := snap.InFlight - executing
	if depth < 0 {
		depth = 0
	}
	p.Gauge("dgf_admission_queue_depth", "Admitted queries waiting for a worker slot.", nil, float64(depth))
	p.Counter("dgf_rejected_total", "Queries rejected because the admission queue was full.", nil, float64(snap.Rejected))
	p.Counter("dgf_loads_total", "Row-load requests served.", nil, float64(snap.Loads))
	p.Counter("dgf_rows_loaded_total", "Rows ingested by load requests.", nil, float64(snap.RowsLoaded))
	p.Counter("dgf_result_invalidations_total", "Cached results evicted because a table they read mutated.", nil, float64(snap.ResultInvalidations))
	p.Counter("dgf_slow_traces_total", "Slow or errored queries captured by the flight recorder.", nil, float64(snap.SlowTraces))

	p.Counter("dgf_queries_total", "Queries observed (successes and errors).", nil, float64(m.Queries))
	p.Counter("dgf_query_errors_total", "Queries that returned an error (timeouts included).", nil, float64(m.Errors))
	p.Counter("dgf_query_timeouts_total", "Queries that missed their deadline.", nil, float64(m.Timeouts))
	p.Counter("dgf_cache_hits_total", "Queries served from the result cache.", nil, float64(m.CacheHits))
	p.Counter("dgf_records_read_total", "Records scanned by executed queries (cache hits excluded).", nil, float64(m.RecordsRead))
	p.Counter("dgf_bytes_read_total", "Bytes read by executed queries (cache hits excluded).", nil, float64(m.BytesRead))
	p.Counter("dgf_rows_out_total", "Result rows returned to clients.", nil, float64(m.RowsOut))
	p.Counter("dgf_sim_cluster_seconds_total", "Simulated cluster seconds spent executing queries.", nil, m.SimClusterSeconds)

	p.Histogram("dgf_query_latency_ms", "End-to-end query wall latency in milliseconds.",
		latencyBucketsMs, bucketCounts(m.Latency), m.WallSeconds*1e3)
	p.Histogram("dgf_admission_wait_ms", "Time queries spent waiting for a worker slot, in milliseconds.",
		latencyBucketsMs, bucketCounts(m.QueueWait), m.QueueWaitSeconds*1e3)

	writePathVec(p, "dgf_path_queries_total", "Executed queries by access path.", m.Paths, func(ps PathSnapshot) float64 { return float64(ps.Queries) })
	writePathVec(p, "dgf_path_records_read_total", "Records scanned by access path.", m.Paths, func(ps PathSnapshot) float64 { return float64(ps.RecordsRead) })
	writePathVec(p, "dgf_path_bytes_read_total", "Bytes read by access path.", m.Paths, func(ps PathSnapshot) float64 { return float64(ps.BytesRead) })
	writePathVec(p, "dgf_path_sim_seconds_total", "Simulated cluster seconds by access path.", m.Paths, func(ps PathSnapshot) float64 { return ps.SimSeconds })

	p.Gauge("dgf_result_cache_entries", "Results currently cached.", nil, float64(snap.ResultCache.Entries))
	p.Counter("dgf_result_cache_hits_total", "Result-cache lookups that hit.", nil, float64(snap.ResultCache.Hits))
	p.Counter("dgf_result_cache_misses_total", "Result-cache lookups that missed.", nil, float64(snap.ResultCache.Misses))
	p.Counter("dgf_result_cache_evictions_total", "Results evicted by capacity pressure.", nil, float64(snap.ResultCache.Evictions))
	p.Gauge("dgf_plan_cache_entries", "Parsed statements currently cached.", nil, float64(snap.PlanCache.Entries))
	p.Counter("dgf_plan_cache_hits_total", "Plan-cache lookups that hit.", nil, float64(snap.PlanCache.Hits))
	p.Counter("dgf_plan_cache_misses_total", "Plan-cache lookups that missed.", nil, float64(snap.PlanCache.Misses))
	p.Counter("dgf_plan_cache_evictions_total", "Parsed statements evicted by capacity pressure.", nil, float64(snap.PlanCache.Evictions))

	if len(snap.Shards) > 0 {
		p.GaugeHead("dgf_shard_live_replicas", "Live replicas per shard.")
		for _, sh := range snap.Shards {
			p.GaugeRow("dgf_shard_live_replicas", map[string]string{"shard": strconv.Itoa(sh.Shard)}, float64(sh.Live))
		}
		p.GaugeHead("dgf_replica_live", "1 when the replica is live (healthy, not ejected).")
		for _, sh := range snap.Shards {
			for _, rep := range sh.Detail {
				p.GaugeRow("dgf_replica_live", replicaLabels(sh.Shard, rep.Replica), boolGauge(rep.Live))
			}
		}
		p.GaugeHead("dgf_replica_inflight", "Requests currently executing on the replica.")
		for _, sh := range snap.Shards {
			for _, rep := range sh.Detail {
				p.GaugeRow("dgf_replica_inflight", replicaLabels(sh.Shard, rep.Replica), float64(rep.Inflight))
			}
		}
		p.GaugeHead("dgf_replica_consecutive_failures", "Consecutive failures recorded against the replica.")
		for _, sh := range snap.Shards {
			for _, rep := range sh.Detail {
				p.GaugeRow("dgf_replica_consecutive_failures", replicaLabels(sh.Shard, rep.Replica), float64(rep.ConsecutiveFailures))
			}
		}
	}

	if len(snap.WAL) > 0 {
		p.Counter("dgf_wal_rows_applied_total", "Rows drained from the write-ahead logs into the warehouses.", nil, float64(snap.RowsApplied))
		var replayed, hinted float64
		for _, sh := range snap.WAL {
			for _, rep := range sh.Replicas {
				replayed += float64(rep.ReplayedRows)
				hinted += float64(rep.HintedRecords)
			}
		}
		p.Counter("dgf_wal_replayed_rows_total", "Rows replayed into replicas by catch-up after an outage.", nil, replayed)
		p.Counter("dgf_wal_hinted_records_total", "Log records committed while a replica was down and owed to it.", nil, hinted)

		p.GaugeHead("dgf_wal_pending_records", "Logged records not yet applied on the replica (ingest backlog depth).")
		for _, sh := range snap.WAL {
			for _, rep := range sh.Replicas {
				p.GaugeRow("dgf_wal_pending_records", replicaLabels(sh.Shard, rep.Replica), float64(rep.PendingRecords))
			}
		}
		p.GaugeHead("dgf_wal_last_lsn", "Highest log sequence number durable on the replica's log.")
		for _, sh := range snap.WAL {
			for _, rep := range sh.Replicas {
				p.GaugeRow("dgf_wal_last_lsn", replicaLabels(sh.Shard, rep.Replica), float64(rep.LastLSN))
			}
		}
		p.GaugeHead("dgf_wal_applied_lsn", "Highest log sequence number applied on the replica (lag = last_lsn - applied_lsn).")
		for _, sh := range snap.WAL {
			for _, rep := range sh.Replicas {
				p.GaugeRow("dgf_wal_applied_lsn", replicaLabels(sh.Shard, rep.Replica), float64(rep.AppliedLSN))
			}
		}
		p.GaugeHead("dgf_wal_replica_catching_up", "1 while the replica is replaying missed records after a revive.")
		for _, sh := range snap.WAL {
			for _, rep := range sh.Replicas {
				p.GaugeRow("dgf_wal_replica_catching_up", replicaLabels(sh.Shard, rep.Replica), boolGauge(rep.CatchingUp))
			}
		}
	}
	return p.Err()
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func replicaLabels(shard, replica int) map[string]string {
	return map[string]string{"shard": strconv.Itoa(shard), "replica": strconv.Itoa(replica)}
}

// bucketCounts converts the JSON histogram shape (cumulative-ready buckets
// with LeMs 0 marking +Inf) back to per-slot counts for the exposition
// writer, which expects len(latencyBucketsMs)+1 slots.
func bucketCounts(buckets []LatencyBucket) []int64 {
	counts := make([]int64, len(latencyBucketsMs)+1)
	for i, b := range buckets {
		if i < len(counts) {
			counts[i] = b.Count
		}
	}
	return counts
}

// writePathVec emits one per-access-path counter family.
func writePathVec(p *trace.PromWriter, name, help string, paths []PathSnapshot, val func(PathSnapshot) float64) {
	values := make(map[string]float64, len(paths))
	for _, ps := range paths {
		values[ps.Path] = val(ps)
	}
	p.CounterVec(name, help, "path", values)
}
