package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.MapSlotsPerWorker = -1 },
		func(c *Config) { c.ReduceSlotsPerWorker = 0 },
		func(c *Config) { c.DiskMBps = 0 },
		func(c *Config) { c.NetMBps = -3 },
		func(c *Config) { c.KVBatchSize = 0 },
	}
	for i, mutate := range cases {
		c := Default()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error, got nil", i)
		}
	}
}

func TestSlots(t *testing.T) {
	c := Default()
	if got, want := c.MapSlots(), 28*5; got != want {
		t.Errorf("MapSlots() = %d, want %d", got, want)
	}
	if got, want := c.ReduceSlots(), 28*3; got != want {
		t.Errorf("ReduceSlots() = %d, want %d", got, want)
	}
}

func TestScanTaskSecondsComponents(t *testing.T) {
	c := Default()
	base := c.ScanTaskSeconds(0, 0, 0)
	if base != c.TaskStartupSec {
		t.Errorf("empty task = %v, want startup %v", base, c.TaskStartupSec)
	}
	oneMB := c.ScanTaskSeconds(1<<20, 0, 0) - base
	if want := 1 / c.MapperMBps(); math.Abs(oneMB-want) > 1e-9 {
		t.Errorf("1MB read cost = %v, want %v", oneMB, want)
	}
	seeks := c.ScanTaskSeconds(0, 0, 10) - base
	if want := 10 * c.SeekMs / 1e3; math.Abs(seeks-want) > 1e-9 {
		t.Errorf("10 seeks cost = %v, want %v", seeks, want)
	}
}

func TestKVSeconds(t *testing.T) {
	c := Default()
	if got := c.KVSeconds(0); got != 0 {
		t.Errorf("KVSeconds(0) = %v, want 0", got)
	}
	// One key: one batch RTT plus one per-op cost.
	want := c.KVBatchRTTMs/1e3 + c.KVPerOpUs/1e6
	if got := c.KVSeconds(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("KVSeconds(1) = %v, want %v", got, want)
	}
	// Batch boundary: KVBatchSize keys is one batch, +1 key adds a batch.
	n := int64(c.KVBatchSize)
	oneBatch := c.KVSeconds(n)
	twoBatch := c.KVSeconds(n + 1)
	if twoBatch <= oneBatch {
		t.Errorf("expected extra batch RTT: %v then %v", oneBatch, twoBatch)
	}
}

func TestMakespanDegenerate(t *testing.T) {
	if got := Makespan(nil, 4); got != 0 {
		t.Errorf("Makespan(nil) = %v, want 0", got)
	}
	if got := Makespan([]float64{3, 1, 2}, 10); got != 3 {
		t.Errorf("more slots than tasks: got %v, want max task 3", got)
	}
	if got := Makespan([]float64{1, 1, 1, 1}, 1); got != 4 {
		t.Errorf("single slot: got %v, want sum 4", got)
	}
}

func TestMakespanWaves(t *testing.T) {
	// 10 identical tasks on 4 slots: ceil(10/4)=3 waves.
	tasks := make([]float64, 10)
	for i := range tasks {
		tasks[i] = 2.0
	}
	if got := Makespan(tasks, 4); got != 6.0 {
		t.Errorf("Makespan = %v, want 6.0 (3 waves of 2s)", got)
	}
}

// Property: the makespan is always between the trivial lower bounds
// (max task, total/slots) and the total serial time.
func TestMakespanBoundsProperty(t *testing.T) {
	f := func(raw []uint16, slotsRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		slots := int(slotsRaw%16) + 1
		tasks := make([]float64, len(raw))
		total, max := 0.0, 0.0
		for i, r := range raw {
			tasks[i] = float64(r%1000) / 100.0
			total += tasks[i]
			if tasks[i] > max {
				max = tasks[i]
			}
		}
		m := Makespan(tasks, slots)
		lower := total / float64(slots)
		if max > lower {
			lower = max
		}
		const eps = 1e-9
		return m >= lower-eps && m <= total+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScaledMapSeconds(t *testing.T) {
	c := Default().Scaled(1000)
	if c.ScaleFactor != 1000 {
		t.Fatalf("Scaled factor = %v", c.ScaleFactor)
	}
	// Empty phase costs nothing.
	if got := c.ScaledMapSeconds(PhaseVolumes{}); got != 0 {
		t.Errorf("empty phase = %v", got)
	}
	// One metre of data scaled 1000x: 1 MB -> 1 GB -> ceil(1GB/64MB)=16
	// tasks in one wave on 140 slots.
	oneMB := c.ScaledMapSeconds(PhaseVolumes{Bytes: 1 << 20})
	perTask := c.TaskStartupSec + 64/c.MapperMBps()
	if math.Abs(oneMB-perTask) > 1e-6 {
		t.Errorf("1MB scaled phase = %v, want one wave of %v", oneMB, perTask)
	}
	// Ten times the data costs about ten times the waves once slots are
	// saturated.
	big := c.ScaledMapSeconds(PhaseVolumes{Bytes: 100 << 20})
	bigger := c.ScaledMapSeconds(PhaseVolumes{Bytes: 1000 << 20})
	if ratio := bigger / big; ratio < 8 || ratio > 12 {
		t.Errorf("10x data -> %vx time, want ~10x", ratio)
	}
	// Seeks are NOT scaled (slice counts are a grid property).
	withSeeks := c.ScaledMapSeconds(PhaseVolumes{Bytes: 1 << 20, Seeks: 100})
	if delta := withSeeks - oneMB; delta > 100*c.SeekMs/1e3+1e-9 {
		t.Errorf("seek contribution %v exceeds unscaled cost", delta)
	}
}

func TestScaledReduceAndShuffle(t *testing.T) {
	c := Default().Scaled(100)
	if got := c.ScaledReduceSeconds(1<<20, 100, 0); got != 0 {
		t.Errorf("zero reducers = %v", got)
	}
	one := c.ScaledReduceSeconds(1<<20, 1000, 4)
	if one <= c.TaskStartupSec {
		t.Errorf("reduce phase = %v, want above startup", one)
	}
	shuffled := c.ScaledShuffleSeconds(1 << 20)
	plain := c.ShuffleSeconds(100 << 20)
	if math.Abs(shuffled-plain) > 1e-9 {
		t.Errorf("scaled shuffle %v != manual %v", shuffled, plain)
	}
}

func TestScaledClampsBelowOne(t *testing.T) {
	c := Default().Scaled(0.5)
	if c.ScaleFactor != 1 {
		t.Errorf("factor below 1 not clamped: %v", c.ScaleFactor)
	}
}

func TestReduceTaskSeconds(t *testing.T) {
	c := Default()
	base := c.ReduceTaskSeconds(0, 0)
	if base != c.TaskStartupSec {
		t.Errorf("empty reduce task = %v", base)
	}
	if c.ReduceTaskSeconds(1<<20, 1000) <= base {
		t.Error("reduce work costs nothing")
	}
}

// Property: adding a task never decreases the makespan.
func TestMakespanMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, extra uint16, slotsRaw uint8) bool {
		slots := int(slotsRaw%8) + 1
		tasks := make([]float64, len(raw))
		for i, r := range raw {
			tasks[i] = float64(r % 500)
		}
		before := Makespan(tasks, slots)
		after := Makespan(append(tasks, float64(extra%500)), slots)
		return after >= before-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
