// Package cluster models the hardware testbed of the DGFIndex paper: a
// 29-node Hadoop/HBase cluster (1 master + 28 workers, 5 map slots and
// 3 reduce slots per worker, 64 MB HDFS blocks).
//
// All experiment code in this repository executes for real, in process, on
// the local machine; package cluster converts the observed work (bytes read,
// records processed, tasks launched, shuffle volume, key-value round trips)
// into *simulated cluster seconds* using a calibrated cost model. The paper's
// figures report wall-clock seconds on the 29-node cluster; we report the
// simulated seconds next to local wall time, and compare shapes/ratios rather
// than absolute values (see EXPERIMENTS.md).
package cluster

import (
	"fmt"
	"sort"
)

// Config describes the simulated cluster topology and per-component costs.
// The zero value is not useful; start from Default().
type Config struct {
	// Workers is the number of worker nodes (the paper uses 28).
	Workers int
	// MapSlotsPerWorker is the number of concurrent map tasks per worker
	// (the paper configures up to 5).
	MapSlotsPerWorker int
	// ReduceSlotsPerWorker is the number of concurrent reduce tasks per
	// worker (the paper configures up to 3).
	ReduceSlotsPerWorker int

	// DiskMBps is the aggregate sequential disk bandwidth of one worker in
	// MB/s. Map slots on the same worker share it.
	DiskMBps float64
	// NetMBps is the network bandwidth of one worker in MB/s, used for the
	// shuffle phase and for remote reads.
	NetMBps float64
	// RecordCPUUs is the CPU cost in microseconds for deserialising and
	// processing one record in a map or reduce function.
	RecordCPUUs float64

	// TaskStartupSec is the fixed overhead of launching one map or reduce
	// task (JVM reuse disabled in Hadoop 1.x; about a second).
	TaskStartupSec float64
	// JobStartupSec is the fixed overhead of one MapReduce job: HiveQL
	// parsing, plan generation and job submission. The paper's "read index
	// and other" bar is dominated by this.
	JobStartupSec float64

	// SeekMs is the cost of one random seek on a worker disk, paid when the
	// slice-skipping record reader jumps between Slices inside a split.
	SeekMs float64

	// KVBatchRTTMs is the round-trip latency of one batched request to the
	// key-value store (HBase in the paper).
	KVBatchRTTMs float64
	// KVPerOpUs is the incremental per-key cost within a batch.
	KVPerOpUs float64
	// KVBatchSize is how many keys one round trip carries.
	KVBatchSize int

	// ScaleFactor treats the in-process dataset as a 1/ScaleFactor sample
	// of the modelled deployment's data: job input/shuffle/output volumes
	// are multiplied by it before costing, and map tasks are re-derived as
	// SimBlockMB-sized units. Grid-cell and key-value op counts are NOT
	// scaled — DGFIndex's index size depends on the splitting policy, not
	// the data volume, which is exactly the paper's point. 1 (or 0) means
	// no scaling; unit tests use 1, the experiment harness sets it to
	// paper-bytes / generated-bytes.
	ScaleFactor float64
	// SimBlockMB is the modelled HDFS block (and so map-task input) size
	// used when ScaleFactor rescales task counts. Default 64, the paper's.
	SimBlockMB float64
}

// Default returns the paper-calibrated cluster model: 28 workers with
// 8 virtual cores and a shared virtualised disk. Effective per-mapper scan
// throughput is calibrated so that a full scan of the 1 TB meter table costs
// about 1950 simulated seconds, matching Section 5.3.2.
func Default() *Config {
	return &Config{
		Workers:              28,
		MapSlotsPerWorker:    5,
		ReduceSlotsPerWorker: 3,
		DiskMBps:             24, // virtualised disk shared by 5 map slots
		NetMBps:              40,
		RecordCPUUs:          1.5,
		TaskStartupSec:       1.0,
		JobStartupSec:        10.0,
		SeekMs:               8.0,
		KVBatchRTTMs:         2.0,
		KVPerOpUs:            40,
		KVBatchSize:          1000,
		ScaleFactor:          1,
		SimBlockMB:           64,
	}
}

// Scaled returns a copy of the configuration with the given data-volume
// scale factor.
func (c *Config) Scaled(factor float64) *Config {
	out := *c
	if factor < 1 {
		factor = 1
	}
	out.ScaleFactor = factor
	return &out
}

// PhaseVolumes aggregates one job phase's work for analytic costing.
type PhaseVolumes struct {
	Bytes, Records, Seeks int64
}

// ScaledMapSeconds prices a map phase analytically from aggregate volumes:
// the scaled input is chopped into SimBlockMB tasks scheduled in waves onto
// the map slots. Used when ScaleFactor > 1; at factor 1 the per-task LPT
// model is preferred.
func (c *Config) ScaledMapSeconds(v PhaseVolumes) float64 {
	sf := c.ScaleFactor
	bytes := float64(v.Bytes) * sf
	records := float64(v.Records) * sf
	// Seek counts do NOT scale: the number of Slices a query touches equals
	// the number of grid cells it overlaps, which depends on the splitting
	// policy rather than the data volume (at full scale the Slices are
	// larger, not more numerous).
	seeks := float64(v.Seeks)
	if bytes == 0 && records == 0 {
		return 0
	}
	blockBytes := c.SimBlockMB * (1 << 20)
	nTasks := bytes / blockBytes
	if nTasks < 1 {
		nTasks = 1
	}
	waves := nTasks / float64(c.MapSlots())
	if waves < 1 {
		waves = 1
	}
	taskSec := c.TaskStartupSec +
		(bytes/nTasks)/(c.MapperMBps()*(1<<20)) +
		(records/nTasks)*c.RecordCPUUs/1e6 +
		(seeks/nTasks)*c.SeekMs/1e3
	return waves * taskSec
}

// ScaledShuffleSeconds prices the shuffle of scaled intermediate bytes.
func (c *Config) ScaledShuffleSeconds(bytes int64) float64 {
	return c.ShuffleSeconds(int64(float64(bytes) * c.ScaleFactor))
}

// ScaledReduceSeconds prices a reduce phase: scaled volume spread over
// nReducers tasks scheduled in waves onto the reduce slots.
func (c *Config) ScaledReduceSeconds(bytes, records int64, nReducers int) float64 {
	if nReducers <= 0 {
		return 0
	}
	sf := c.ScaleFactor
	b := float64(bytes) * sf
	r := float64(records) * sf
	waves := float64(nReducers) / float64(c.ReduceSlots())
	if waves < 1 {
		waves = 1
	}
	taskSec := c.TaskStartupSec +
		(b/float64(nReducers))/(c.ReducerMBps()*(1<<20)) +
		(r/float64(nReducers))*c.RecordCPUUs/1e6
	return waves * taskSec
}

// Validate reports whether the configuration is internally consistent.
func (c *Config) Validate() error {
	switch {
	case c.Workers <= 0:
		return fmt.Errorf("cluster: Workers must be positive, got %d", c.Workers)
	case c.MapSlotsPerWorker <= 0:
		return fmt.Errorf("cluster: MapSlotsPerWorker must be positive, got %d", c.MapSlotsPerWorker)
	case c.ReduceSlotsPerWorker <= 0:
		return fmt.Errorf("cluster: ReduceSlotsPerWorker must be positive, got %d", c.ReduceSlotsPerWorker)
	case c.DiskMBps <= 0 || c.NetMBps <= 0:
		return fmt.Errorf("cluster: bandwidths must be positive")
	case c.KVBatchSize <= 0:
		return fmt.Errorf("cluster: KVBatchSize must be positive, got %d", c.KVBatchSize)
	}
	return nil
}

// MapSlots returns the cluster-wide number of concurrent map tasks.
func (c *Config) MapSlots() int { return c.Workers * c.MapSlotsPerWorker }

// ReduceSlots returns the cluster-wide number of concurrent reduce tasks.
func (c *Config) ReduceSlots() int { return c.Workers * c.ReduceSlotsPerWorker }

// MapperMBps is the effective sequential read bandwidth available to a single
// map task when all map slots of its worker are busy.
func (c *Config) MapperMBps() float64 {
	return c.DiskMBps / float64(c.MapSlotsPerWorker)
}

// ReducerMBps is the effective disk bandwidth available to a single reduce
// task when all reduce slots of its worker are busy.
func (c *Config) ReducerMBps() float64 {
	return c.DiskMBps / float64(c.ReduceSlotsPerWorker)
}

// ScanTaskSeconds models one map task that sequentially reads bytes of input
// containing records records, with nSeeks random seeks interleaved (the
// slice-skipping reader). It includes the per-task startup overhead.
func (c *Config) ScanTaskSeconds(bytes, records, nSeeks int64) float64 {
	mb := float64(bytes) / (1 << 20)
	return c.TaskStartupSec +
		mb/c.MapperMBps() +
		float64(records)*c.RecordCPUUs/1e6 +
		float64(nSeeks)*c.SeekMs/1e3
}

// ShuffleSeconds models moving bytes of intermediate data across the network
// during the shuffle, overlapped across all workers.
func (c *Config) ShuffleSeconds(bytes int64) float64 {
	mb := float64(bytes) / (1 << 20)
	return mb / (c.NetMBps * float64(c.Workers))
}

// ReduceTaskSeconds models one reduce task that materialises bytes of output
// after processing records grouped records.
func (c *Config) ReduceTaskSeconds(bytes, records int64) float64 {
	mb := float64(bytes) / (1 << 20)
	return c.TaskStartupSec +
		mb/c.ReducerMBps() +
		float64(records)*c.RecordCPUUs/1e6
}

// KVSeconds models nOps point operations against the key-value store,
// batched KVBatchSize keys per round trip.
func (c *Config) KVSeconds(nOps int64) float64 {
	if nOps <= 0 {
		return 0
	}
	batches := (nOps + int64(c.KVBatchSize) - 1) / int64(c.KVBatchSize)
	return float64(batches)*c.KVBatchRTTMs/1e3 + float64(nOps)*c.KVPerOpUs/1e6
}

// Makespan computes the completion time of a set of independent tasks
// scheduled greedily (longest processing time first) onto slots parallel
// slots. This is the classic LPT approximation of the optimal makespan and
// models Hadoop's wave-based task scheduling.
func Makespan(taskSeconds []float64, slots int) float64 {
	if len(taskSeconds) == 0 {
		return 0
	}
	if slots <= 0 {
		slots = 1
	}
	if slots >= len(taskSeconds) {
		max := 0.0
		for _, t := range taskSeconds {
			if t > max {
				max = t
			}
		}
		return max
	}
	sorted := make([]float64, len(taskSeconds))
	copy(sorted, taskSeconds)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	loads := make([]float64, slots)
	for _, t := range sorted {
		// Assign to the least-loaded slot. For the task counts in this
		// repository (thousands), the linear scan is cheap and avoids a heap.
		min := 0
		for i := 1; i < slots; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += t
	}
	max := 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}
