package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages, resolving intra-repo imports
// itself (so every pass shares one type universe and object identities
// line up across packages) and delegating everything else — in practice
// only the standard library — to the stdlib source importer.
type Loader struct {
	Fset *token.FileSet
	// resolve maps an import path to a source directory for packages
	// the loader owns; anything it declines falls through to std.
	resolve  func(path string) (string, bool)
	std      types.Importer
	pkgs     map[string]*Package
	checking map[string]bool
}

func newLoader(resolve func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		resolve:  resolve,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     map[string]*Package{},
		checking: map[string]bool{},
	}
}

// NewModuleLoader returns a loader rooted at the module directory
// containing go.mod, plus the import paths of every package in the
// module (sorted, testdata and _test.go files excluded).
func NewModuleLoader(root string) (*Loader, []string, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, nil, err
	}
	paths := make([]string, 0, len(dirs))
	byPath := make(map[string]string, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, nil, err
		}
		p := modPath
		if rel != "." {
			p = modPath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, p)
		byPath[p] = dir
	}
	sort.Strings(paths)
	l := newLoader(func(path string) (string, bool) {
		dir, ok := byPath[path]
		return dir, ok
	})
	return l, paths, nil
}

// NewDirLoader returns a loader for analysistest-style trees: srcRoot
// holds one directory per package, and the directory's path relative to
// srcRoot is the package's import path. Local packages shadow the
// standard library, so test fixtures may use any name.
func NewDirLoader(srcRoot string) *Loader {
	return newLoader(func(path string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	})
}

// Load parses and type-checks the package at the given import path
// (loading its intra-repo dependencies first) and caches the result.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.resolve(path)
	if !ok {
		return nil, fmt.Errorf("analysis: package %s not found", path)
	}
	if l.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	files, err := parseDir(l.Fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if _, ok := l.resolve(imp); ok {
				p, err := l.Load(imp)
				if err != nil {
					return nil, err
				}
				return p.Types, nil
			}
			return l.std.Import(imp)
		}),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		if firstErr != nil {
			err = firstErr
		}
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// parseDir parses every non-test .go file of dir, in name order.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// packageDirs walks root collecting every directory holding at least
// one non-test .go file, skipping testdata, hidden, and underscore
// directories.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if path != root && (n == "testdata" || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			if dir := filepath.Dir(path); !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}
