package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one post-suppression diagnostic with its source position
// resolved, ready for printing or test comparison.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// suppression is one parsed "//dgflint:ignore <analyzer> <reason>"
// directive. It silences matching diagnostics on its own line or the
// line directly below (directive-above-statement style).
type suppression struct {
	file     string
	line     int
	analyzer string // "all" matches every analyzer
}

const (
	directiveIgnore   = "dgflint:ignore"
	directiveCompat   = "dgflint:compat"
	directiveRegistry = "dgflint:metric-registry"
	directiveLabels   = "dgflint:metric-labels"
)

// Run executes every analyzer over every package, applies suppression
// directives, and returns the surviving findings sorted by position.
// Malformed directives (a dgflint:ignore or dgflint:compat with no
// reason) are themselves findings: unexplained suppressions defeat the
// point of machine-checked invariants.
func Run(analyzers []*Analyzer, fset *token.FileSet, pkgs []*Package) ([]Finding, error) {
	world := buildWorld(pkgs)
	var sups []suppression
	var findings []Finding
	for _, pkg := range pkgs {
		s, bad := scanDirectives(fset, pkg)
		sups = append(sups, s...)
		findings = append(findings, bad...)
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.Path,
				TypesInfo: pkg.Info,
				World:     world,
			}
			pass.Report = func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				if suppressed(sups, a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

func suppressed(sups []suppression, analyzer string, pos token.Position) bool {
	for _, s := range sups {
		if s.file != pos.Filename {
			continue
		}
		if s.line != pos.Line && s.line != pos.Line-1 {
			continue
		}
		if s.analyzer == "all" || s.analyzer == analyzer {
			return true
		}
	}
	return false
}

// buildWorld assembles the cross-package state every pass shares:
// compat-marked functions, the metric registries, and the package map.
func buildWorld(pkgs []*Package) *World {
	w := &World{
		CompatFuncs:    map[types.Object]string{},
		MetricFamilies: map[string]bool{},
		MetricLabels:   map[string]bool{},
		Packages:       map[string]*Package{},
	}
	for _, pkg := range pkgs {
		w.Packages[pkg.Path] = pkg
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if reason, ok := directiveIn(d.Doc, directiveCompat); ok {
						if obj := pkg.Info.Defs[d.Name]; obj != nil {
							w.CompatFuncs[obj] = reason
						}
					}
				case *ast.GenDecl:
					if d.Tok != token.CONST {
						continue
					}
					into := w.MetricFamilies
					if _, ok := directiveIn(d.Doc, directiveLabels); ok {
						into = w.MetricLabels
					} else if _, ok := directiveIn(d.Doc, directiveRegistry); !ok {
						continue
					}
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							c, ok := pkg.Info.Defs[name].(*types.Const)
							if ok && c.Val().Kind() == constant.String {
								into[constant.StringVal(c.Val())] = true
							}
						}
					}
				}
			}
		}
	}
	return w
}

// directiveIn reports whether a comment group carries the given
// directive and returns the rest of that line (the reason).
func directiveIn(doc *ast.CommentGroup, directive string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if rest, ok := strings.CutPrefix(strings.TrimSpace(text), directive); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// scanDirectives collects the suppression directives of one package and
// flags malformed ones (no analyzer name, or no reason: an unexplained
// suppression is itself a violation).
func scanDirectives(fset *token.FileSet, pkg *Package) ([]suppression, []Finding) {
	var sups []suppression
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, directiveIgnore)
				if !ok {
					if r, ok := strings.CutPrefix(text, directiveCompat); ok && strings.TrimSpace(r) == "" {
						bad = append(bad, Finding{
							Analyzer: "dgflint",
							Pos:      fset.Position(c.Pos()),
							Message:  "dgflint:compat directive needs a reason explaining why the wrapper may mint its own context",
						})
					}
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "dgflint",
						Pos:      fset.Position(c.Pos()),
						Message:  "dgflint:ignore needs an analyzer name and a reason: //dgflint:ignore <analyzer> <why this is safe>",
					})
					continue
				}
				sups = append(sups, suppression{
					file:     fset.Position(c.Pos()).Filename,
					line:     fset.Position(c.Pos()).Line,
					analyzer: fields[0],
				})
			}
		}
	}
	return sups, bad
}
