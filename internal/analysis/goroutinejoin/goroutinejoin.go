// Package goroutinejoin enforces the scatter-join contract from PR 5's
// failover work: goroutines launched in internal/shard and internal/wal
// must be visibly joined — a naked fire-and-forget goroutine in those
// packages has historically meant a leak under cancellation.
//
// A "go" statement passes if the enclosing function shows one of:
//
//   - a WaitGroup pairing: an X.Add(...) call before the go statement,
//     an X.Wait() anywhere, or a Y.Done() inside the goroutine body;
//   - a completion channel: the goroutine closes a channel the
//     enclosing function also mentions (receives/selects on);
//   - a quit channel: the goroutine receives from / selects on a
//     channel the enclosing function closes elsewhere;
//   - a context bound: the goroutine selects on v.Done() where v was
//     created by a context.With* call in the enclosing function (the
//     returned CancelFunc is the join handle).
//
// Goroutines joined structurally elsewhere (e.g. a cursor pump joined
// by Close) carry "//dgflint:ignore goroutinejoin <join point>".
package goroutinejoin

import (
	"go/ast"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/analysis"
)

var scope = []string{"shard", "wal"}

var Analyzer = &analysis.Analyzer{
	Name: "goroutinejoin",
	Doc:  "go statements in internal/shard and internal/wal must be paired with a WaitGroup or channel join reachable in the enclosing function",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, seg := range scope {
		if analysis.PathHasSegment(pass.PkgPath, seg) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Name.Name, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, funcName string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		var goBody ast.Node = gs.Call
		if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
			goBody = lit.Body
		}
		ff := collectFacts(pass, body, gs)
		gf := collectGoFacts(goBody)
		joined := gf.doneCall || ff.hasWait || ff.hasAdd ||
			intersects(gf.closes, ff.received) ||
			intersects(gf.receives, ff.closed) ||
			intersects(gf.ctxDone, ff.ctxCreated)
		if !joined {
			pass.Reportf(gs.Pos(),
				"goroutine launched by %s is fire-and-forget: pair it with a WaitGroup or channel join reachable here, or //dgflint:ignore goroutinejoin naming the join point",
				funcName)
		}
		return true
	})
}

func intersects(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

type funcFacts struct {
	hasWait    bool
	hasAdd     bool // an X.Add(...) call positioned before the go statement
	closed     map[string]bool // channels closed outside the goroutine under test
	received   map[string]bool // channels received/selected on outside the goroutine
	ctxCreated map[string]bool // idents assigned from context.With*(...)
}

func collectFacts(pass *analysis.Pass, body ast.Node, skip ast.Node) *funcFacts {
	ff := &funcFacts{
		closed:     map[string]bool{},
		received:   map[string]bool{},
		ctxCreated: map[string]bool{},
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == skip {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if selName(n.Fun) == "Wait" {
				ff.hasWait = true
			}
			// wg.Add(1) immediately paired with the launch is the
			// canonical WaitGroup handoff; the Done lives inside the
			// spawned method and the Wait in whoever owns the group.
			if selName(n.Fun) == "Add" && n.Pos() < skip.Pos() {
				ff.hasAdd = true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if nm := baseName(n.Args[0]); nm != "" {
					ff.closed[nm] = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				f := analysis.FuncFor(pass.TypesInfo, call)
				if f == nil || f.Pkg() == nil || f.Pkg().Path() != "context" || !strings.HasPrefix(f.Name(), "With") {
					continue
				}
				for _, lhs := range n.Lhs {
					if nm := baseName(lhs); nm != "" {
						ff.ctxCreated[nm] = true
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if nm := recvChanName(n.X); nm != "" {
					ff.received[nm] = true
				}
			}
		case *ast.RangeStmt:
			if nm := baseName(n.X); nm != "" {
				ff.received[nm] = true
			}
		}
		return true
	})
	return ff
}

// goFacts summarises the goroutine body: channels it closes, channels
// it receives from, whether it calls Done() on something, and the
// receivers of v.Done() channel reads (context joins).
type goFacts struct {
	closes   map[string]bool
	receives map[string]bool
	doneCall bool            // X.Done() as a statement call (WaitGroup-style)
	ctxDone  map[string]bool // <-v.Done() receives
}

func collectGoFacts(body ast.Node) *goFacts {
	gf := &goFacts{closes: map[string]bool{}, receives: map[string]bool{}, ctxDone: map[string]bool{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && selName(call.Fun) == "Done" {
				gf.doneCall = true
			}
		case *ast.DeferStmt:
			if selName(n.Call.Fun) == "Done" {
				gf.doneCall = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if nm := baseName(n.Args[0]); nm != "" {
					gf.closes[nm] = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if nm := recvChanName(n.X); nm != "" {
					gf.receives[nm] = true
				}
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && selName(call.Fun) == "Done" {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						if nm := baseName(sel.X); nm != "" {
							gf.ctxDone[nm] = true
						}
					}
				}
			}
		}
		return true
	})
	return gf
}

func selName(e ast.Expr) string {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// baseName names an expression for channel-identity matching: the
// identifier itself, or the final selector field (c.done → done).
func baseName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// recvChanName names the channel of a receive expression; receives from
// Done() calls are named after the callee's receiver handled separately.
func recvChanName(e ast.Expr) string {
	if _, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return ""
	}
	return baseName(e)
}
