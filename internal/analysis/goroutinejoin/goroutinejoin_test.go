package goroutinejoin_test

import (
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/analysis/analysistest"
	"github.com/smartgrid-oss/dgfindex/internal/analysis/goroutinejoin"
)

func TestGoroutineJoin(t *testing.T) {
	analysistest.Run(t, "../testdata", goroutinejoin.Analyzer,
		"goroutinejoin/shard", "goroutinejoin/util")
}
