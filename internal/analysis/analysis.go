// Package analysis is a stdlib-only static-analysis framework shaped
// after golang.org/x/tools/go/analysis, hosting the dgflint analyzers
// that mechanically enforce this codebase's concurrency, context, and
// observability invariants.
//
// Why not x/tools itself: the main module is deliberately
// dependency-free (every subsystem from the Prometheus writer to the
// WAL is stdlib-only), and the builds run hermetically with no module
// proxy. Instead of vendoring x/tools or carrying a separate tools
// module, the framework re-implements the small slice of the
// go/analysis contract dgflint needs — Analyzer/Pass/Diagnostic, a
// package loader, directive-based suppression, and an analysistest-like
// want-comment runner — on top of go/parser, go/types, and the
// stdlib source importer. Analyzers written against it keep the
// familiar shape, so porting them onto x/tools later is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//dgflint:ignore <name> <reason>" suppression directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced,
	// shown by "dgflint -list".
	Doc string
	// Run checks one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed, type-checked state to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// PkgPath is the package's import path ("internal/shard"-style
	// suffixes are what scope checks match on).
	PkgPath   string
	TypesInfo *types.Info
	// World holds cross-package state gathered by the driver's prescan:
	// compat-marked functions, the metric-name registry, and every
	// loaded package (for one-level helper resolution).
	World *World
	// Report records one finding. The driver applies suppression
	// directives afterwards, so analyzers always report.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// World is the cross-package state shared by every pass of one run.
// It is assembled by the driver before any analyzer runs, so analyzers
// never depend on package visit order.
type World struct {
	// CompatFuncs holds the *types.Func objects of functions marked
	// "//dgflint:compat <reason>": context-free compatibility wrappers
	// that are allowed to mint context.Background(), and that
	// context-bearing functions must not call.
	CompatFuncs map[types.Object]string
	// MetricFamilies is the closed set of Prometheus family names
	// declared in const blocks marked "//dgflint:metric-registry".
	MetricFamilies map[string]bool
	// MetricLabels is the closed set of Prometheus label names declared
	// in const blocks marked "//dgflint:metric-labels".
	MetricLabels map[string]bool
	// Packages maps import path to the loaded package, letting
	// analyzers resolve one-level helper functions cross-package.
	Packages map[string]*Package
}

// FuncFor returns the *types.Func for a call's callee, unwrapping
// parenthesised expressions and method values. Returns nil for calls
// through function-typed variables, conversions, and builtins.
func FuncFor(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// HasContextParam reports whether sig takes a context.Context anywhere.
func HasContextParam(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// PathHasSegment reports whether pkgPath contains seg as a whole
// "/"-separated segment ("internal/shard" matches seg "shard"). It is
// how analyzers scope themselves to subsystems while remaining
// testable against analysistest packages named after those segments.
func PathHasSegment(pkgPath, seg string) bool {
	for len(pkgPath) > 0 {
		i := 0
		for i < len(pkgPath) && pkgPath[i] != '/' {
			i++
		}
		if pkgPath[:i] == seg {
			return true
		}
		if i == len(pkgPath) {
			return false
		}
		pkgPath = pkgPath[i+1:]
	}
	return false
}
