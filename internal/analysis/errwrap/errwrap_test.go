package errwrap_test

import (
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/analysis/analysistest"
	"github.com/smartgrid-oss/dgfindex/internal/analysis/errwrap"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, "../testdata", errwrap.Analyzer, "errwrap/wrapx")
}
