// Package errwrap enforces the error-wrapping contract the server's
// ctxError classifier (PR 4) depends on: an error formatted into
// another error must be wrapped with %w, never flattened with %v/%s,
// so errors.Is/As — and therefore timeout/cancel classification on
// mid-scan aborts — keep seeing the cause chain.
//
// Deliberate flattening (e.g. replica kill-aborts that must NOT look
// like caller cancellations) is annotated at the call site with
// "//dgflint:ignore errwrap <reason>".
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"

	"github.com/smartgrid-oss/dgfindex/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf must wrap error arguments with %w so errors.Is/As keep working",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := analysis.FuncFor(pass.TypesInfo, call)
			if f == nil || f.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			verbs := argVerbs(constant.StringVal(tv.Value), len(call.Args)-1)
			for i, arg := range call.Args[1:] {
				at, ok := pass.TypesInfo.Types[arg]
				if !ok || at.Type == nil {
					continue
				}
				if !types.Implements(at.Type, errType) {
					continue
				}
				if i < len(verbs) && verbs[i] != 'w' && verbs[i] != 0 {
					pass.Reportf(arg.Pos(),
						"error argument formatted with %%%c: use %%w so callers can unwrap it (or //dgflint:ignore errwrap with the reason flattening is intended)",
						verbs[i])
				}
			}
			return true
		})
	}
	return nil
}

// argVerbs maps fmt.Errorf argument index (0-based, after the format)
// to the verb that consumes it. Width/precision stars consume an
// argument and are recorded as '*'; unconsumed trailing args get 0.
func argVerbs(format string, nargs int) []byte {
	verbs := make([]byte, nargs)
	arg := 0
	record := func(v byte) {
		if arg < nargs {
			verbs[arg] = v
		}
		arg++
	}
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags, width, precision, and explicit argument indexes
		done := false
		for i < len(format) && !done {
			c := format[i]
			switch {
			case c == '*':
				record('*')
				i++
			case c == '[':
				// explicit index %[n]v
				j := i + 1
				for j < len(format) && format[j] != ']' {
					j++
				}
				if n, err := strconv.Atoi(format[i+1 : min(j, len(format))]); err == nil {
					arg = n - 1
				}
				i = j + 1
			case c == '#' || c == '+' || c == '-' || c == ' ' || c == '0' ||
				(c >= '1' && c <= '9') || c == '.':
				i++
			default:
				record(c)
				done = true
			}
		}
		i--
	}
	return verbs
}
