package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, &Package{Path: "fixture", Files: []*ast.File{f}}
}

func TestScanDirectivesMalformed(t *testing.T) {
	fset, pkg := parseOne(t, `package fixture

//dgflint:ignore errwrap
var a int

//dgflint:ignore
var b int

//dgflint:ignore shadow outer err is rewritten on the next line
var c int
`)
	sups, bad := scanDirectives(fset, pkg)
	if len(sups) != 1 {
		t.Fatalf("suppressions = %d, want 1 (only the directive with a reason counts)", len(sups))
	}
	if sups[0].analyzer != "shadow" {
		t.Fatalf("suppression analyzer = %q, want shadow", sups[0].analyzer)
	}
	if len(bad) != 2 {
		t.Fatalf("malformed findings = %d, want 2", len(bad))
	}
	for _, f := range bad {
		if f.Analyzer != "dgflint" {
			t.Errorf("malformed finding attributed to %q, want dgflint", f.Analyzer)
		}
		if !strings.Contains(f.Message, "reason") {
			t.Errorf("malformed finding message %q does not mention the missing reason", f.Message)
		}
	}
}

func TestScanDirectivesCompatNeedsReason(t *testing.T) {
	fset, pkg := parseOne(t, `package fixture

//dgflint:compat
func Exec() {}

//dgflint:compat documented ctx-free wrapper
func ExecOpts() {}
`)
	_, bad := scanDirectives(fset, pkg)
	if len(bad) != 1 {
		t.Fatalf("malformed findings = %d, want 1 (bare dgflint:compat)", len(bad))
	}
}

func TestSuppressedMatchesSameAndPreviousLine(t *testing.T) {
	sups := []suppression{{file: "x.go", line: 9, analyzer: "errwrap"}}
	cases := []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"errwrap", 9, true},   // same line
		{"errwrap", 10, true},  // directive on the line above
		{"errwrap", 11, false}, // too far
		{"errwrap", 8, false},  // directive below the finding
		{"ctxflow", 9, false},  // other analyzer
	}
	for _, c := range cases {
		pos := token.Position{Filename: "x.go", Line: c.line}
		if got := suppressed(sups, c.analyzer, pos); got != c.want {
			t.Errorf("suppressed(%s, line %d) = %v, want %v", c.analyzer, c.line, got, c.want)
		}
	}
	if suppressed([]suppression{{file: "x.go", line: 9, analyzer: "all"}}, "anything",
		token.Position{Filename: "x.go", Line: 9}) != true {
		t.Error(`analyzer "all" should match every analyzer`)
	}
}

func TestPathHasSegment(t *testing.T) {
	cases := []struct {
		path, seg string
		want      bool
	}{
		{"github.com/smartgrid-oss/dgfindex/internal/shard", "shard", true},
		{"github.com/smartgrid-oss/dgfindex/internal/sharded", "shard", false},
		{"goroutinejoin/shard", "shard", true},
		{"shard", "shard", true},
		{"internal/hive", "wal", false},
		{"", "shard", false},
	}
	for _, c := range cases {
		if got := PathHasSegment(c.path, c.seg); got != c.want {
			t.Errorf("PathHasSegment(%q, %q) = %v, want %v", c.path, c.seg, got, c.want)
		}
	}
}
