// Package lockedcalls enforces the "*Locked" naming contract hardened
// in PR 4's post-review pass: a function named fooLocked documents that
// its caller already holds the protecting mutex. Two rules follow:
//
//  1. A call to a *Locked function must come from a function that is
//     itself *Locked, or that visibly acquires a lock (a .Lock() or
//     .RLock() call) before the call site.
//  2. A *Locked method must never acquire a lock through its own
//     receiver — its contract says the lock is already held, so doing
//     so deadlocks (sync.Mutex) or blocks writers (RWMutex).
package lockedcalls

import (
	"go/ast"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockedcalls",
	Doc: "*Locked functions may only be called with the lock held (caller is *Locked or acquired a " +
		"lock earlier in its body) and must not themselves lock their receiver's mutex",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isLockedName(fd.Name.Name) {
				checkLockedFunc(pass, fd)
				continue
			}
			checkCaller(pass, fd)
		}
	}
	return nil
}

// isLockedName reports whether name carries the *Locked suffix contract.
func isLockedName(name string) bool {
	return strings.HasSuffix(name, "Locked") && name != "Locked"
}

// calleeName extracts the called function's name, syntactically, so the
// check also fires on calls the type-checker cannot resolve.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isLockAcquire reports whether call is X.Lock() or X.RLock().
func isLockAcquire(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	return sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock"
}

// rootIdent walks a selector chain (rep.mu.Lock → rep) to its base.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkLockedFunc flags a *Locked function that locks via its own
// receiver (rule 2).
func checkLockedFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recv := fd.Recv.List[0].Names[0].Name
	if recv == "_" {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			// A closure handed elsewhere (e.g. deferred after unlock)
			// is outside this function's lock window; don't guess.
			_ = lit
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isLockAcquire(call) {
			return true
		}
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if root := rootIdent(sel.X); root != nil && root.Name == recv {
			pass.Reportf(call.Pos(),
				"%s acquires %s inside a *Locked function: the contract says the caller already holds the lock",
				fd.Name.Name, exprString(sel))
		}
		return true
	})
}

// checkCaller flags calls to *Locked functions made before any visible
// lock acquisition (rule 1).
func checkCaller(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Collect every acquisition position first: defer/Lock at the top
	// guards everything after it positionally.
	var acquires []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isLockAcquire(call) {
			acquires = append(acquires, call)
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !isLockedName(name) {
			return true
		}
		for _, acq := range acquires {
			if acq.Pos() < call.Pos() {
				return true
			}
		}
		pass.Reportf(call.Pos(),
			"call to %s from %s, which neither is *Locked nor acquires a lock before the call",
			name, fd.Name.Name)
		return true
	})
}

func exprString(sel *ast.SelectorExpr) string {
	if root := rootIdent(sel.X); root != nil {
		return root.Name + "..." + sel.Sel.Name
	}
	return sel.Sel.Name
}
