package lockedcalls_test

import (
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/analysis/analysistest"
	"github.com/smartgrid-oss/dgfindex/internal/analysis/lockedcalls"
)

func TestLockedCalls(t *testing.T) {
	analysistest.Run(t, "../testdata", lockedcalls.Analyzer, "lockedcalls/cat")
}
