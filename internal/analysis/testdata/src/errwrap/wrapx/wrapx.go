// Fixture for the errwrap analyzer: fmt.Errorf with error arguments.
package wrapx

import "fmt"

type codeError struct{ code int }

func (e *codeError) Error() string { return "code" }

func flattenV(err error) error {
	return fmt.Errorf("open: %v", err) // want `error argument formatted with %v: use %w`
}

func flattenS(err error) error {
	return fmt.Errorf("open: %s", err) // want `error argument formatted with %s: use %w`
}

func wrapped(err error) error {
	return fmt.Errorf("open: %w", err) // ok
}

func nonError(n int) error {
	return fmt.Errorf("count: %d", n) // ok: no error argument
}

func mixed(path string, err error) error {
	return fmt.Errorf("read %s attempt %d: %w", path, 2, err) // ok: the error gets %w
}

// Explicit argument indexes still map verbs to arguments.
func indexed(name string, err error) error {
	return fmt.Errorf("%[2]v from %[1]s", name, err) // want `error argument formatted with %v`
}

// Concrete error types count, not just the error interface.
func concrete(e *codeError) error {
	return fmt.Errorf("op failed: %v", e) // want `error argument formatted with %v`
}

func deliberate(err error) error {
	//dgflint:ignore errwrap fixture: classification must not leak the cause chain
	return fmt.Errorf("deliberately flat: %v", err)
}
