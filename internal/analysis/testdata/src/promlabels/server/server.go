// Fixture emitter for the promlabels analyzer: every family and label
// written through the PromWriter must come from the registry const
// blocks declared in the sibling trace package.
package server

import (
	"fmt"

	"promlabels/trace"
)

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func Write(p *trace.PromWriter, shard int, qps float64) {
	p.Gauge("dgf_up", "Process is up.", nil, 1)       // ok: literal in the registry
	p.Gauge(trace.MetricUp, "Process is up.", nil, 1) // ok: registry constant

	p.Counter("dgf_bogus_total", "Not registered.", nil, 1) // want `metric family "dgf_bogus_total" is not in the dgflint:metric-registry const set`

	p.Counter(fmt.Sprintf("dgf_shard_%d_total", shard), "Built per shard.", nil, 1) // want `dynamically built metric family name`

	p.CounterVec("dgf_queries_total", "Queries.", "shard", map[string]float64{"a": qps}) // ok
	p.CounterVec("dgf_queries_total", "Queries.", "user", nil)                           // want `label name "user" is not in the dgflint:metric-labels const set`

	p.GaugeRow("dgf_up", shardLabels(shard), 1)                // ok: local helper returning registered keys
	p.GaugeRow("dgf_up", map[string]string{"shard": "0"}, 1)   // ok: literal registered key
	p.GaugeRow("dgf_up", map[string]string{"user": "bob"}, 1)  // want `label name "user" is not in the dgflint:metric-labels const set`
}

func shardLabels(shard int) map[string]string {
	return map[string]string{"shard": itoa(shard)}
}

// writeVec forwards its name parameter into a family position, so its
// call sites are checked instead of this body.
func writeVec(p *trace.PromWriter, name string, vals map[string]float64) {
	p.CounterVec(name, "Forwarded.", "shard", vals)
}

func Emit(p *trace.PromWriter) {
	writeVec(p, "dgf_queries_total", nil) // ok: registered family through the forwarder
	writeVec(p, "dgf_nope_total", nil)    // want `metric family "dgf_nope_total" is not in the dgflint:metric-registry const set`
}
