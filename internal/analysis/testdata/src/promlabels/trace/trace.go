// Fixture writer and registry for the promlabels analyzer, mirroring
// the real internal/trace layout: the PromWriter methods are matched by
// receiver type name, and the two const blocks below are the closed
// family/label universes.
package trace

type PromWriter struct{}

func (p *PromWriter) Counter(name, help string, labels map[string]string, value float64) {}
func (p *PromWriter) Gauge(name, help string, labels map[string]string, value float64)   {}
func (p *PromWriter) CounterVec(name, help, labelName string, values map[string]float64) {}
func (p *PromWriter) GaugeRow(name string, labels map[string]string, value float64)      {}
func (p *PromWriter) GaugeHead(name, help string)                                        {}
func (p *PromWriter) Histogram(name, help string, bounds []float64, counts []int64, sum float64) {
}

// Families the fixture may expose.
//
//dgflint:metric-registry
const (
	MetricUp      = "dgf_up"
	MetricQueries = "dgf_queries_total"
)

// Labels the fixture may expose.
//
//dgflint:metric-labels
const (
	LabelShard = "shard"
)
