// Fixture for the shadow analyzer: flag stale reads past a shadowing
// declaration, tolerate the guard idiom and the capture idiom.
package vars

type file struct{}

func (file) close() error { return nil }

func open() (file, error) { return file{}, nil }

func newErr(s string) error { return errorString(s) }

type errorString string

func (e errorString) Error() string { return string(e) }

// The outer firstErr is read at the return, after the shadowing
// declaration swallowed what looks like an assignment to it: flagged.
func process(items []string) error {
	var firstErr error
	for _, it := range items {
		if it == "" {
			firstErr := newErr("empty item") // want `declaration of "firstErr" shadows declaration at`
			_ = firstErr
		}
	}
	return firstErr
}

// The guard idiom: the outer err is never read after the inner scope,
// so nothing is flagged.
func guard() error {
	f, err := open()
	if err != nil {
		return err
	}
	if err := f.close(); err != nil { // ok
		return err
	}
	return nil
}

// The outer err is rewritten before its next read, so the shadow
// cannot cause a stale read: not flagged.
func rewritten() (file, error) {
	f, err := open()
	if err != nil {
		return f, err
	}
	if err := f.close(); err != nil { // ok
		return f, err
	}
	f, err = open()
	return f, err
}

// Parameter shadows are the deliberate capture idiom: not flagged.
func capture(items []string) {
	for i := range items {
		func(i int) { _ = i }(i) // ok
	}
	_ = items
}
