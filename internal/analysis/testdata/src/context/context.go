// Package context is a hermetic stand-in for the standard library's
// context package, so analyzer fixtures type-check without invoking the
// source importer. The loader resolves local testdata packages before
// the standard library, and the analyzers match on the import path
// "context", which this package shares.
package context

// Context mirrors the shape the analyzers inspect.
type Context interface {
	Done() <-chan struct{}
	Err() error
}

type background struct{}

func (background) Done() <-chan struct{} { return nil }
func (background) Err() error            { return nil }

func Background() Context { return background{} }

func TODO() Context { return background{} }

// CancelFunc mirrors context.CancelFunc.
type CancelFunc func()

func WithCancel(parent Context) (Context, CancelFunc) {
	return parent, func() {}
}
