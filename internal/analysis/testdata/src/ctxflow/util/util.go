// Fixture for the ctxflow analyzer: "util" is not one of the scoped
// subsystem segments, so nothing here is flagged — utilities and entry
// points may mint their own contexts.
package util

import "context"

func Standalone() error {
	ctx := context.Background() // ok: out of ctxflow's scope
	_ = ctx
	return nil
}
