// Fixture for the ctxflow analyzer: the package path contains the
// "hive" segment, so it is in scope.
package hive

import "context"

func work(ctx context.Context) error {
	_ = ctx
	return nil
}

// Exec is the documented ctx-free wrapper: allowed to mint Background.
//
//dgflint:compat fixture wrapper; run-to-completion is the documented contract
func Exec() error {
	return work(context.Background()) // ok: inside a compat wrapper
}

func mintsBackground() error {
	ctx := context.Background() // want `context\.Background\(\) in library code`
	return work(ctx)
}

func mintsTODO() error {
	return work(context.TODO()) // want `context\.TODO\(\) in library code`
}

func dropsCtx(ctx context.Context) error {
	_ = ctx
	return Exec() // want `calls ctx-free compat wrapper Exec, dropping the caller's cancellation`
}

func threadsCtx(ctx context.Context) error {
	return work(ctx) // ok: ctx threaded through
}

// Closures capture the enclosing context, so calling a compat wrapper
// from one still drops the caller's cancellation.
func closureDropsCtx(ctx context.Context) func() error {
	_ = ctx
	return func() error {
		return Exec() // want `calls ctx-free compat wrapper Exec`
	}
}

func suppressed() error {
	//dgflint:ignore ctxflow fixture exercising the suppression path
	ctx := context.Background()
	return work(ctx)
}
