// Fixture for the lockedcalls analyzer: the *Locked naming contract.
package cat

import "sync"

type Catalog struct {
	mu     sync.RWMutex
	tables map[string]int
}

func (c *Catalog) tableLocked(name string) int { return c.tables[name] }

func (c *Catalog) sizeLocked() int { return len(c.tables) }

// Table acquires the lock before calling the Locked helper: allowed.
func (c *Catalog) Table(name string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tableLocked(name)
}

// statsLocked is itself *Locked, so calling Locked helpers is allowed.
func (c *Catalog) statsLocked(name string) (int, int) {
	return c.tableLocked(name), c.sizeLocked()
}

// Peek calls a Locked helper with no visible acquisition: flagged.
func (c *Catalog) Peek(name string) int {
	return c.tableLocked(name) // want `call to tableLocked from Peek, which neither is \*Locked nor acquires a lock`
}

// reindexLocked locks its own receiver's mutex despite the *Locked
// contract saying the caller already holds it: flagged.
func (c *Catalog) reindexLocked() {
	c.mu.Lock() // want `reindexLocked acquires c\.\.\.Lock inside a \*Locked function`
	defer c.mu.Unlock()
	c.tables = map[string]int{}
}

// Rebuild is a caller that suppresses the finding with a reason.
func (c *Catalog) Rebuild() int {
	//dgflint:ignore lockedcalls fixture: single-goroutine setup phase, no lock needed yet
	return c.sizeLocked()
}
