// Package sync is a hermetic stand-in for the standard library's sync,
// just enough surface for the goroutinejoin and lockedcalls fixtures
// (both analyzers match method names syntactically).
package sync

type WaitGroup struct{ n int }

func (w *WaitGroup) Add(delta int) { w.n += delta }
func (w *WaitGroup) Done()         { w.n-- }
func (w *WaitGroup) Wait()         {}

type Mutex struct{}

func (*Mutex) Lock()   {}
func (*Mutex) Unlock() {}

type RWMutex struct{}

func (*RWMutex) Lock()    {}
func (*RWMutex) Unlock()  {}
func (*RWMutex) RLock()   {}
func (*RWMutex) RUnlock() {}
