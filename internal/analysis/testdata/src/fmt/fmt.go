// Package fmt is a hermetic stand-in for the standard library's fmt,
// just enough surface for the errwrap and promlabels fixtures. The
// errwrap analyzer matches the callee by its full name "fmt.Errorf",
// which this package provides under the same import path.
package fmt

type wrapped struct{ msg string }

func (w *wrapped) Error() string { return w.msg }

func Errorf(format string, args ...any) error { return &wrapped{msg: format} }

func Sprintf(format string, args ...any) string { return format }
