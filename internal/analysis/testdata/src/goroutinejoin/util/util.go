// Fixture for the goroutinejoin analyzer: "util" is outside the
// shard/wal scope, so fire-and-forget goroutines are not flagged here.
package util

func FireAndForget(f func()) {
	go f() // ok: out of goroutinejoin's scope
}
