// Fixture for the goroutinejoin analyzer: the package path contains
// the "shard" segment, so it is in scope.
package shard

import (
	"context"
	"sync"
)

type pump struct {
	done chan struct{}
	wg   sync.WaitGroup
}

func (p *pump) run() {}

// A goroutine with no visible join: flagged.
func naked(p *pump) {
	go p.run() // want `goroutine launched by naked is fire-and-forget`
}

// wg.Add paired with the launch: the Done lives inside the spawned
// method and the Wait in whoever owns the group.
func addPaired(p *pump) {
	p.wg.Add(1)
	go p.run()
}

// Done in the body, Wait in the function.
func waitPaired() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// Completion channel: the goroutine closes what the function receives.
func closeJoin() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// Quit channel: the goroutine receives from what the function closes.
func quitJoin() {
	quit := make(chan struct{})
	go func() {
		<-quit
	}()
	close(quit)
}

// Context bound: the goroutine selects on a context created here; the
// CancelFunc is the join handle.
func ctxJoin(ctx context.Context) {
	kctx, cancel := context.WithCancel(ctx)
	go func() {
		<-kctx.Done()
	}()
	cancel()
}

// Structurally joined elsewhere: suppressed with the join point named.
func annotated(p *pump) {
	//dgflint:ignore goroutinejoin fixture: joined by Close via p.done
	go p.run()
}
