package ctxflow_test

import (
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/analysis/analysistest"
	"github.com/smartgrid-oss/dgfindex/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "../testdata", ctxflow.Analyzer, "ctxflow/hive", "ctxflow/util")
}
