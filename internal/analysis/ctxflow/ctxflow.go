// Package ctxflow enforces the context-first execution contract
// introduced by the PR 4 API redesign: library code under
// internal/{hive,shard,server,mapreduce,wal} never mints its own
// root context — it threads the caller's.
//
// Two rules:
//
//  1. context.Background() and context.TODO() are forbidden outside
//     functions marked "//dgflint:compat <reason>" (the documented
//     ctx-free compatibility wrappers, e.g. Warehouse.Exec).
//  2. A function that receives a context.Context must not call a
//     compat wrapper: that would silently drop the caller's
//     cancellation. Call the Context variant instead.
package ctxflow

import (
	"go/ast"
	"go/types"

	"github.com/smartgrid-oss/dgfindex/internal/analysis"
)

// scope names the library subsystems whose execution paths must thread
// ctx (matched as import-path segments, so analysistest packages named
// after a subsystem are in scope too).
var scope = []string{"hive", "shard", "server", "mapreduce", "wal"}

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbids context.Background()/TODO() in library code outside //dgflint:compat wrappers, " +
		"and forbids ctx-bearing functions from calling those ctx-free wrappers",
	Run: run,
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, seg := range scope {
		if analysis.PathHasSegment(pass.PkgPath, seg) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok {
				_, compat := pass.World.CompatFuncs[pass.TypesInfo.Defs[fd.Name]]
				checkFunc(pass, fd.Body, compat, declHasCtx(pass, fd))
				continue
			}
			// Package-level initialisers can hide a Background() too.
			ast.Inspect(decl, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkCall(pass, call, false, false)
				}
				return true
			})
		}
	}
	return nil
}

func declHasCtx(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && analysis.HasContextParam(sig)
}

// checkFunc walks one function body. hasCtx widens (a closure inside a
// ctx-bearing function captures that ctx); compat applies to the whole
// declaration including its closures.
func checkFunc(pass *analysis.Pass, body ast.Node, compat, hasCtx bool) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := hasCtx
			if sig, ok := pass.TypesInfo.Types[n].Type.(*types.Signature); ok && analysis.HasContextParam(sig) {
				lit = true
			}
			checkFunc(pass, n.Body, compat, lit)
			return false
		case *ast.CallExpr:
			checkCall(pass, n, compat, hasCtx)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, compat, hasCtx bool) {
	f := analysis.FuncFor(pass.TypesInfo, call)
	if f == nil {
		return
	}
	if f.Pkg() != nil && f.Pkg().Path() == "context" && (f.Name() == "Background" || f.Name() == "TODO") {
		if !compat {
			pass.Reportf(call.Pos(),
				"context.%s() in library code: thread the caller's ctx, or mark the enclosing wrapper //dgflint:compat with a reason",
				f.Name())
		}
		return
	}
	if hasCtx {
		if reason, ok := pass.World.CompatFuncs[f]; ok {
			_ = reason
			pass.Reportf(call.Pos(),
				"context-bearing function calls ctx-free compat wrapper %s, dropping the caller's cancellation: call its Context variant",
				f.Name())
		}
	}
}
