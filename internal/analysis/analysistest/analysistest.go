// Package analysistest runs a dgflint analyzer over testdata packages
// and checks its diagnostics against "// want" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib-only
// framework in internal/analysis.
//
// Layout: <testdata>/src/<pkgpath>/*.go, one directory per package.
// A line expecting diagnostics carries one expectation per finding:
//
//	ctx := context.Background() // want `context\.Background`
//
// Each quoted or backquoted regexp after "want" must match exactly one
// diagnostic reported on that line, and every diagnostic must be
// claimed by an expectation.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/analysis"
)

// Run loads each package (dependencies first, in the listed order),
// runs the analyzer, and diffs findings against want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := analysis.NewDirLoader(filepath.Join(testdata, "src"))
	var pkgs []*analysis.Package
	for _, p := range pkgPaths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	findings, err := analysis.Run([]*analysis.Analyzer{a}, loader.Fset, pkgs)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, loader.Fset, pkgs)
	matched := make([]bool, len(findings))
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if matched[i] || f.Pos.Filename != w.file || f.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(f.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package) []want {
	t.Helper()
	var wants []want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, pat := range splitPatterns(t, pos.String(), rest) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// splitPatterns extracts the quoted ("...") and backquoted (`...`)
// regexps of one want comment.
func splitPatterns(t *testing.T, at, s string) []string {
	t.Helper()
	var pats []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			end := i + 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				t.Fatalf("%s: unterminated want pattern", at)
			}
			unq, err := strconv.Unquote(s[i : end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", at, s[i:end+1], err)
			}
			pats = append(pats, unq)
			i = end
		case '`':
			end := strings.IndexByte(s[i+1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern", at)
			}
			pats = append(pats, s[i+1:i+1+end])
			i += end + 1
		}
	}
	if len(pats) == 0 {
		t.Fatalf("%s: want comment with no pattern", at)
	}
	return pats
}
