package shadow_test

import (
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/analysis/analysistest"
	"github.com/smartgrid-oss/dgfindex/internal/analysis/shadow"
)

func TestShadow(t *testing.T) {
	analysistest.Run(t, "../testdata", shadow.Analyzer, "shadow/vars")
}
