// Package shadow is the stock-vet-style shadowed-variable check,
// re-implemented on the stdlib framework because x/tools (which ships
// the reference "shadow" analyzer) is not available to this
// dependency-free module. It flags a declaration that shadows a
// same-named, same-typed variable of an enclosing function scope when
// the shadowed variable is READ after the shadowing scope ends without
// being rewritten first — the stale-read pattern where a reader
// believes the outer variable (classically err or ctx) was updated,
// but a shadow swallowed the assignment.
//
// Two deliberate narrowings versus the x/tools analyzer keep the
// check default-on without drowning idiomatic code:
//
//   - function and func-literal parameters are exempt: a parameter
//     shadowing a loop variable is the visible capture idiom
//     (go func(i int){...}(i)) and cannot swallow an assignment;
//   - a later `x, err := ...` or `err = ...` that rewrites the outer
//     variable before its next read clears the hazard, so the
//     ubiquitous `if err := f(); err != nil { return err }` guard is
//     not flagged. The read/write ordering is positional, the same
//     source-order approximation stock vet heuristics use.
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/smartgrid-oss/dgfindex/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "flags declarations that shadow an enclosing function-scoped variable of identical type read after the inner scope ends without an intervening write",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	targets, effects := writePositions(pass)
	// reads maps each variable to the sorted positions where it is read
	// (any use that is not an assignment target).
	reads := map[types.Object][]token.Pos{}
	for id, obj := range info.Uses {
		if _, ok := obj.(*types.Var); !ok {
			continue
		}
		if targets[obj][id.Pos()] {
			continue
		}
		reads[obj] = append(reads[obj], id.Pos())
	}
	for _, ps := range reads {
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	}
	params := paramObjects(pass)
	for id, obj := range info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || v.Name() == "_" || params[obj] {
			continue
		}
		inner := v.Parent()
		if inner == nil || inner.Parent() == nil {
			continue
		}
		if inner == pass.Pkg.Scope() {
			continue
		}
		_, outerObj := inner.Parent().LookupParent(v.Name(), id.Pos())
		ov, ok := outerObj.(*types.Var)
		if !ok || ov == v || ov.IsField() || params[ov] {
			continue
		}
		outerScope := ov.Parent()
		if outerScope == nil || outerScope == pass.Pkg.Scope() || outerScope == types.Universe {
			continue
		}
		if !types.Identical(v.Type(), ov.Type()) {
			continue
		}
		// Report only a stale read: the outer variable read after the
		// shadow's scope closes with no write in between.
		if !staleReadAfter(inner.End(), reads[ov], effects[ov]) {
			continue
		}
		pass.Reportf(id.Pos(), "declaration of %q shadows declaration at %s",
			v.Name(), pass.Fset.Position(ov.Pos()))
	}
	return nil
}

// staleReadAfter reports whether some read position after end has no
// write taking effect between end and the read.
func staleReadAfter(end token.Pos, reads []token.Pos, wps []token.Pos) bool {
	for _, r := range reads {
		if r <= end {
			continue
		}
		rewritten := false
		for _, w := range wps {
			if w > end && w < r {
				rewritten = true
				break
			}
		}
		if !rewritten {
			return true
		}
	}
	return false
}

// writePositions collects, per variable, the ident positions where it
// is an assignment target (=, :=, range clause) — reused `:=` targets
// land in info.Uses, so without this they would masquerade as reads —
// and the positions where each write takes effect. The effect position
// is the END of the assignment statement: in
// `x, err := f(func() { ... })` the write to err lands after the
// closure argument has been evaluated, so ordering by the ident's own
// position would wrongly place the write before scopes inside the RHS.
func writePositions(pass *analysis.Pass) (targets map[types.Object]map[token.Pos]bool, effects map[types.Object][]token.Pos) {
	info := pass.TypesInfo
	targets = map[types.Object]map[token.Pos]bool{}
	effects = map[types.Object][]token.Pos{}
	add := func(e ast.Expr, effect token.Pos) {
		if e == nil {
			return
		}
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return
		}
		if targets[obj] == nil {
			targets[obj] = map[token.Pos]bool{}
		}
		targets[obj][id.Pos()] = true
		effects[obj] = append(effects[obj], effect)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					add(lhs, n.End())
				}
			case *ast.RangeStmt:
				add(n.Key, n.X.End())
				add(n.Value, n.X.End())
			}
			return true
		})
	}
	for _, ps := range effects {
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	}
	return targets, effects
}

// paramObjects collects every function and func-literal parameter.
func paramObjects(pass *analysis.Pass) map[types.Object]bool {
	info := pass.TypesInfo
	params := map[types.Object]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ft *ast.FuncType
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft = n.Type
			case *ast.FuncLit:
				ft = n.Type
			default:
				return true
			}
			if ft.Params != nil {
				for _, f := range ft.Params.List {
					for _, name := range f.Names {
						if obj := info.Defs[name]; obj != nil {
							params[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return params
}
