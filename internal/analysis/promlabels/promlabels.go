// Package promlabels keeps /metrics cardinality bounded, the invariant
// PR 6's observability layer was built around: every Prometheus family
// name and label name written through trace.PromWriter must be a
// compile-time constant drawn from the fixed registry const blocks
// (marked "//dgflint:metric-registry" and "//dgflint:metric-labels" in
// internal/trace). A fmt.Sprintf-built family or a per-request label
// name would make scrape size grow with traffic.
//
// Helper functions that forward a name parameter into a PromWriter
// method (e.g. writePathVec) are resolved one level: their call sites
// must pass registry constants too. Label maps built by same-package
// helpers (e.g. replicaLabels) are checked at the helper's return
// statements.
package promlabels

import (
	"go/ast"
	"go/constant"
	"go/types"

	"github.com/smartgrid-oss/dgfindex/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "promlabels",
	Doc:  "Prometheus family and label names must be constants from the dgflint:metric-registry const set (bounded /metrics cardinality)",
	Run:  run,
}

// writerMethods maps PromWriter method names to the indexes of their
// family-name argument and, where present, label-bearing arguments.
type methodShape struct {
	nameArg  int
	labelMap int // index of a map[string]string labels arg, -1 if none
	labelArg int // index of a single label-name string arg, -1 if none
}

var writerMethods = map[string]methodShape{
	"Counter":    {nameArg: 0, labelMap: 2, labelArg: -1},
	"Gauge":      {nameArg: 0, labelMap: 2, labelArg: -1},
	"CounterVec": {nameArg: 0, labelMap: -1, labelArg: 2},
	"GaugeRow":   {nameArg: 0, labelMap: 1, labelArg: -1},
	"GaugeHead":  {nameArg: 0, labelMap: -1, labelArg: -1},
	"Histogram":  {nameArg: 0, labelMap: -1, labelArg: -1},
}

func run(pass *analysis.Pass) error {
	// forwarders maps a same-package function object to the parameter
	// indexes that flow into a family-name position. Iterate to a
	// fixpoint so helpers wrapping helpers are still covered.
	forwarders := map[types.Object]map[int]bool{}
	for {
		grew := false
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if checkBody(pass, fd, forwarders, false) {
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}
	// Final pass actually reports (the discovery passes stay silent so
	// a call site feeding a forwarder is not double-flagged while the
	// forwarder set is still growing).
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd, forwarders, true)
		}
	}
	return nil
}

// checkBody scans one function; in discovery mode (report=false) it
// only grows the forwarder set and reports nothing. Returns whether the
// forwarder set grew.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, forwarders map[types.Object]map[int]bool, report bool) bool {
	grew := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var namePositions []int
		var shape methodShape
		isWriter := false
		if m, ok := writerMethod(pass, call); ok {
			shape = m
			namePositions = []int{m.nameArg}
			isWriter = true
		} else if f := analysis.FuncFor(pass.TypesInfo, call); f != nil {
			if idxs, ok := forwarders[f]; ok {
				for i := range idxs {
					namePositions = append(namePositions, i)
				}
			}
		}
		for _, idx := range namePositions {
			if idx >= len(call.Args) {
				continue
			}
			if checkNameArg(pass, fd, call.Args[idx], forwarders, report) {
				grew = true
			}
		}
		if isWriter {
			if shape.labelArg >= 0 && shape.labelArg < len(call.Args) {
				checkLabelName(pass, call.Args[shape.labelArg], report)
			}
			if shape.labelMap >= 0 && shape.labelMap < len(call.Args) {
				checkLabelMap(pass, call.Args[shape.labelMap], report)
			}
		}
		return true
	})
	return grew
}

// writerMethod matches calls to PromWriter's family-writing methods.
// The receiver is matched by type name so analysistest stubs work.
func writerMethod(pass *analysis.Pass, call *ast.CallExpr) (methodShape, bool) {
	f := analysis.FuncFor(pass.TypesInfo, call)
	if f == nil {
		return methodShape{}, false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return methodShape{}, false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "PromWriter" {
		return methodShape{}, false
	}
	m, ok := writerMethods[f.Name()]
	return m, ok
}

// checkNameArg validates one family-name argument. Returns whether the
// forwarder set grew.
func checkNameArg(pass *analysis.Pass, fd *ast.FuncDecl, arg ast.Expr, forwarders map[types.Object]map[int]bool, report bool) bool {
	if v, ok := constString(pass, arg); ok {
		if report && len(pass.World.MetricFamilies) > 0 && !pass.World.MetricFamilies[v] {
			pass.Reportf(arg.Pos(),
				"metric family %q is not in the dgflint:metric-registry const set: register it (bounded cardinality is the contract)", v)
		}
		return false
	}
	// A non-constant name is tolerable only when it is a parameter of
	// the enclosing function — then every caller is checked instead.
	if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			if idx, ok := paramIndex(pass, fd, obj); ok {
				fobj := pass.TypesInfo.Defs[fd.Name]
				if fobj != nil {
					if forwarders[fobj] == nil {
						forwarders[fobj] = map[int]bool{}
					}
					if !forwarders[fobj][idx] {
						forwarders[fobj][idx] = true
						return true
					}
				}
				return false
			}
		}
	}
	if report {
		pass.Reportf(arg.Pos(), "dynamically built metric family name: use a constant from the dgflint:metric-registry const set")
	}
	return false
}

func checkLabelName(pass *analysis.Pass, arg ast.Expr, report bool) {
	if !report {
		return
	}
	v, ok := constString(pass, arg)
	if !ok {
		pass.Reportf(arg.Pos(), "dynamically built label name: use a constant from the dgflint:metric-labels const set")
		return
	}
	if len(pass.World.MetricLabels) > 0 && !pass.World.MetricLabels[v] {
		pass.Reportf(arg.Pos(), "label name %q is not in the dgflint:metric-labels const set", v)
	}
}

// checkLabelMap validates a map[string]string labels argument: nil, a
// composite literal with registered constant keys, or a call to a
// same-package helper whose returns are such literals.
func checkLabelMap(pass *analysis.Pass, arg ast.Expr, report bool) {
	if !report {
		return
	}
	arg = ast.Unparen(arg)
	switch a := arg.(type) {
	case *ast.Ident:
		if a.Name == "nil" {
			return
		}
	case *ast.CompositeLit:
		checkLabelKeys(pass, a)
		return
	case *ast.CallExpr:
		f := analysis.FuncFor(pass.TypesInfo, a)
		if f != nil {
			if fd, fpass := findFuncDecl(pass, f); fd != nil {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if ret, ok := n.(*ast.ReturnStmt); ok {
						for _, res := range ret.Results {
							if cl, ok := ast.Unparen(res).(*ast.CompositeLit); ok {
								checkLabelKeysIn(pass, fpass, cl)
							}
						}
					}
					return true
				})
				return
			}
		}
	}
	pass.Reportf(arg.Pos(), "label set is not a literal with registered keys (or a local helper returning one): labels must come from the dgflint:metric-labels const set")
}

func checkLabelKeys(pass *analysis.Pass, cl *ast.CompositeLit) {
	checkLabelKeysIn(pass, pass, cl)
}

// checkLabelKeysIn checks a map literal that may live in another
// package (declPass) while reporting against the calling pass.
func checkLabelKeysIn(pass *analysis.Pass, declPass *analysis.Pass, cl *ast.CompositeLit) {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		tv, ok := declPass.TypesInfo.Types[kv.Key]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(kv.Key.Pos(), "dynamically built label name: use a constant from the dgflint:metric-labels const set")
			continue
		}
		v := constant.StringVal(tv.Value)
		if len(pass.World.MetricLabels) > 0 && !pass.World.MetricLabels[v] {
			pass.Reportf(kv.Key.Pos(), "label name %q is not in the dgflint:metric-labels const set", v)
		}
	}
}

// findFuncDecl locates the declaration of f among the loaded packages,
// returning a pass-shaped view of its package for type info.
func findFuncDecl(pass *analysis.Pass, f *types.Func) (*ast.FuncDecl, *analysis.Pass) {
	pkgPath := pass.PkgPath
	if f.Pkg() != nil {
		pkgPath = f.Pkg().Path()
	}
	pkg, ok := pass.World.Packages[pkgPath]
	if !ok {
		return nil, nil
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if pkg.Info.Defs[fd.Name] == f {
				shadow := *pass
				shadow.TypesInfo = pkg.Info
				return fd, &shadow
			}
		}
	}
	return nil, nil
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// paramIndex finds obj among fd's parameters.
func paramIndex(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) (int, bool) {
	if fd.Type.Params == nil {
		return 0, false
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if pass.TypesInfo.Defs[name] == obj {
				return idx, true
			}
			idx++
		}
	}
	return 0, false
}
