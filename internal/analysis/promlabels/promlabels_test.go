package promlabels_test

import (
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/analysis/analysistest"
	"github.com/smartgrid-oss/dgfindex/internal/analysis/promlabels"
)

func TestPromLabels(t *testing.T) {
	analysistest.Run(t, "../testdata", promlabels.Analyzer,
		"promlabels/trace", "promlabels/server")
}
