package hiveindex

import (
	"strconv"
	"strings"
	"sync"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/mapreduce"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// FileFilter is the matched offsets of one data file, the content of the
// temporary file Hive's index handler writes before getSplits runs.
type FileFilter struct {
	// Offsets maps a matched BLOCK_OFFSET_INSIDE_FILE to true.
	Offsets map[int64]bool
	// Rows holds the matched row positions per block (Bitmap Index only).
	Rows map[int64]*bitmapT
}

// FilterResult is the outcome of the pre-query index-table scan.
type FilterResult struct {
	Files map[string]*FileFilter
	// ScanStats is the index-table scan job (the "read index" cost).
	ScanStats mapreduce.Stats
	// Entries is the number of matched index rows.
	Entries int64
}

// Filter scans the whole index table with the query predicate, like Hive
// does before launching the real job. ranges constrains the indexed
// dimensions (missing dimensions are unconstrained).
func (ix *Index) Filter(cfg *cluster.Config, fs *dfs.FS, ranges map[string]gridfile.Range) (*FilterResult, error) {
	res := &FilterResult{Files: map[string]*FileFilter{}}
	var mu sync.Mutex

	dimRanges := make([]*gridfile.Range, len(ix.Cols))
	for i, c := range ix.Cols {
		for name, r := range ranges {
			if strings.EqualFold(name, c) {
				rr := r
				dimRanges[i] = &rr
			}
		}
	}
	input, err := ix.indexInput(fs)
	if err != nil {
		return nil, err
	}
	bucketCol := len(ix.Cols)
	job := &mapreduce.Job{
		Name:  "hiveindex-scan-" + ix.Name,
		Input: input,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			row, err := storage.DecodeTextRow(ix.indexSchema, string(rec.Data))
			if err != nil {
				return err
			}
			for i, r := range dimRanges {
				if r != nil && !r.Contains(row[i]) {
					return nil
				}
			}
			file := row[bucketCol].S
			mu.Lock()
			defer mu.Unlock()
			ff := res.Files[file]
			if ff == nil {
				ff = &FileFilter{Offsets: map[int64]bool{}}
				res.Files[file] = ff
			}
			res.Entries++
			switch ix.Kind {
			case Bitmap:
				off, err := strconv.ParseInt(row[bucketCol+1].S, 10, 64)
				if err != nil {
					return err
				}
				bm, err := decodeBitmap(row[bucketCol+2].S)
				if err != nil {
					return err
				}
				ff.Offsets[off] = true
				if ff.Rows == nil {
					ff.Rows = map[int64]*bitmapT{}
				}
				if prev, ok := ff.Rows[off]; ok {
					prev.union(bm)
				} else {
					ff.Rows[off] = bm
				}
			default:
				offs, err := decodeOffsets(row[bucketCol+1].S)
				if err != nil {
					return err
				}
				for _, o := range offs {
					ff.Offsets[o] = true
				}
			}
			return nil
		},
	}
	stats, err := mapreduce.Run(cfg, job)
	if err != nil {
		return nil, err
	}
	res.ScanStats = *stats
	return res, nil
}

// indexInput opens the index table for scanning.
func (ix *Index) indexInput(fs *dfs.FS) (mapreduce.InputFormat, error) {
	if ix.IndexFormat == RCFile {
		return &mapreduce.RCInput{FS: fs, Dir: ix.IndexDir, Schema: ix.indexSchema}, nil
	}
	return &mapreduce.TextInput{FS: fs, Dir: ix.IndexDir}, nil
}

// SplitFilter implements the getSplits behaviour: keep a split iff it
// contains at least one matched offset of its file.
func (fr *FilterResult) SplitFilter(s dfs.Split) bool {
	ff, ok := fr.Files[s.Path]
	if !ok {
		return false
	}
	for off := range ff.Offsets {
		if off >= s.Start && off < s.End() {
			return true
		}
	}
	return false
}

// GroupFilter keeps only matched row groups (Bitmap Index refinement; the
// Compact Index reads whole splits and does not use it).
func (fr *FilterResult) GroupFilter(path string, offset int64) bool {
	ff, ok := fr.Files[path]
	if !ok {
		return false
	}
	return ff.Offsets[offset]
}

// RowFilter keeps only bitmap-matched rows within a group (Bitmap Index).
func (fr *FilterResult) RowFilter(path string, offset int64, row int) bool {
	ff, ok := fr.Files[path]
	if !ok || ff.Rows == nil {
		return false
	}
	bm, ok := ff.Rows[offset]
	if !ok {
		return false
	}
	return bm.get(row)
}

// BaseInput builds the input format for the main query job over the base
// table, with this filter applied the way the real index kind would:
// Compact and Aggregate filter splits only; Bitmap additionally filters row
// groups and rows (RCFile base tables only).
func (ix *Index) BaseInput(fs *dfs.FS, fr *FilterResult) (mapreduce.InputFormat, error) {
	switch ix.BaseFormat {
	case RCFile:
		in := &mapreduce.RCInput{
			FS: fs, Dir: ix.BaseDir, Schema: ix.Schema,
			SplitFilter: fr.SplitFilter,
		}
		if ix.Kind == Bitmap {
			in.GroupFilter = fr.GroupFilter
			in.RowFilter = fr.RowFilter
		}
		return in, nil
	default:
		return &mapreduce.TextInput{
			FS: fs, Dir: ix.BaseDir,
			SplitFilter: fr.SplitFilter,
		}, nil
	}
}

// AggregateCounts answers a covered GROUP BY count query from the index
// table alone (the Aggregate Index "index as data" rewrite): groups by the
// named index dimensions and sums the pre-computed _count column.
func (ix *Index) AggregateCounts(cfg *cluster.Config, fs *dfs.FS, ranges map[string]gridfile.Range, groupBy []string) (map[string]int64, *mapreduce.Stats, error) {
	if ix.Kind != Aggregate {
		return nil, nil, errNotAggregate
	}
	groupIdx := make([]int, len(groupBy))
	for i, g := range groupBy {
		gi := -1
		for j, c := range ix.Cols {
			if strings.EqualFold(c, g) {
				gi = j
			}
		}
		if gi < 0 {
			return nil, nil, errNotCovered
		}
		groupIdx[i] = gi
	}
	dimRanges := make([]*gridfile.Range, len(ix.Cols))
	for i, c := range ix.Cols {
		for name, r := range ranges {
			if strings.EqualFold(name, c) {
				rr := r
				dimRanges[i] = &rr
			}
		}
	}
	counts := map[string]int64{}
	var mu sync.Mutex
	input, err := ix.indexInput(fs)
	if err != nil {
		return nil, nil, err
	}
	countCol := len(ix.Cols) + 2
	job := &mapreduce.Job{
		Name:  "hiveindex-aggscan-" + ix.Name,
		Input: input,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			row, err := storage.DecodeTextRow(ix.indexSchema, string(rec.Data))
			if err != nil {
				return err
			}
			for i, r := range dimRanges {
				if r != nil && !r.Contains(row[i]) {
					return nil
				}
			}
			var key []string
			for _, gi := range groupIdx {
				key = append(key, row[gi].String())
			}
			mu.Lock()
			counts[strings.Join(key, "\x01")] += row[countCol].I
			mu.Unlock()
			return nil
		},
	}
	stats, err := mapreduce.Run(cfg, job)
	if err != nil {
		return nil, nil, err
	}
	return counts, stats, nil
}

var (
	errNotAggregate = strErr("hiveindex: not an aggregate index")
	errNotCovered   = strErr("hiveindex: GROUP BY not covered by index dimensions")
)

type strErr string

func (e strErr) Error() string { return string(e) }
