// Package hiveindex re-implements the three index types that ship with Hive
// and that the paper evaluates DGFIndex against (Section 2.2):
//
//   - Compact Index (HIVE-417): an index *table* holding one row per
//     combination of indexed-dimension values per data file, with the array
//     of record offsets (BLOCK_OFFSET_INSIDE_FILE). Query processing first
//     scans the whole index table, writes the matching filename→offsets
//     pairs to a temporary file, and getSplits keeps only splits containing
//     at least one matched offset. Chosen splits are then read in full — a
//     Compact Index cannot skip records inside a split, which is the paper's
//     central criticism.
//
//   - Aggregate Index (HIVE-1694): the Compact Index plus pre-computed
//     per-row-group aggregations (count only, as in Hive); GROUP BY queries
//     whose dimensions and aggregates are covered rewrite to a scan of the
//     much smaller index table ("index as data").
//
//   - Bitmap Index (HIVE-1803): the Compact Index with, per (dims, file,
//     block) entry, a bitmap of matching row positions inside the block.
//     Effective only for RCFile tables, where a block (row group) holds many
//     rows.
//
// All three store the index itself as a Hive table (TextFile or RCFile) in
// the model filesystem, so index size (Tables 2 and 5) and the cost of the
// pre-query index scan (the "read index" bars of Figures 8-18) emerge
// naturally.
package hiveindex

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/mapreduce"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// Kind selects which of Hive's indexes to build.
type Kind uint8

// The three Hive index flavours.
const (
	Compact Kind = iota
	Aggregate
	Bitmap
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Compact:
		return "compact"
	case Aggregate:
		return "aggregate"
	case Bitmap:
		return "bitmap"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Format selects the file format of a table (base or index). The canonical
// enum lives in the storage package (the segment abstraction dispatches on
// it); the alias keeps this package's historical names working.
type Format = storage.Format

// Supported table formats.
const (
	TextFile = storage.TextFile
	RCFile   = storage.RCFile
)

// Options configures an index build.
type Options struct {
	Name string
	Kind Kind
	// BaseDir and BaseFormat locate the indexed table.
	BaseDir    string
	BaseFormat Format
	Schema     *storage.Schema
	// Cols are the indexed dimensions, in order.
	Cols []string
	// IndexDir receives the index table files.
	IndexDir string
	// IndexFormat is the storage format of the index table itself (the
	// paper uses RCFile-based Compact indexes for the meter data).
	IndexFormat Format
	// RowGroupRows sizes RCFile row groups of the index table.
	RowGroupRows int
	// DisableEncoding writes the index table with plain-text row groups (no
	// dictionary/RLE column encoding). The paper-scale experiments set it so
	// Table 2's index-size comparison measures the same unencoded layout the
	// paper measured.
	DisableEncoding bool
}

// Index is a built Hive-style index.
type Index struct {
	Options
	dimCols []int
	// indexSchema is the schema of the index table.
	indexSchema *storage.Schema
}

// indexSchema derives the index-table schema per Table 1 of the paper.
func buildIndexSchema(o Options) (*storage.Schema, []int, error) {
	cols := make([]storage.Column, 0, len(o.Cols)+4)
	dimCols := make([]int, len(o.Cols))
	for i, c := range o.Cols {
		ci := o.Schema.ColIndex(c)
		if ci < 0 {
			return nil, nil, fmt.Errorf("hiveindex: column %q not in table", c)
		}
		dimCols[i] = ci
		cols = append(cols, o.Schema.Col(ci))
	}
	cols = append(cols,
		storage.Column{Name: "_bucketname", Kind: storage.KindString},
		storage.Column{Name: "_offsets", Kind: storage.KindString},
	)
	switch o.Kind {
	case Aggregate:
		cols = append(cols, storage.Column{Name: "_count", Kind: storage.KindInt64})
	case Bitmap:
		cols = append(cols, storage.Column{Name: "_bitmaps", Kind: storage.KindString})
	}
	return storage.NewSchema(cols...), dimCols, nil
}

// Build populates the index table with one MapReduce job, the equivalent of
// the INSERT OVERWRITE ... GROUP BY statement of Listing 1.
func Build(cfg *cluster.Config, fs *dfs.FS, o Options) (*Index, *mapreduce.Stats, error) {
	schema, dimCols, err := buildIndexSchema(o)
	if err != nil {
		return nil, nil, err
	}
	ix := &Index{Options: o, dimCols: dimCols, indexSchema: schema}
	if err := fs.MkdirAll(o.IndexDir); err != nil {
		return nil, nil, err
	}

	input, err := baseInput(fs, o)
	if err != nil {
		return nil, nil, err
	}
	numReducers := cfg.ReduceSlots()
	if numReducers > 32 {
		numReducers = 32
	}
	job := &mapreduce.Job{
		Name:  "hiveindex-build-" + o.Name,
		Input: input,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			key, err := ix.groupKey(rec)
			if err != nil {
				return err
			}
			// Value: the record's offset (plus row position for bitmaps).
			val := strconv.FormatInt(rec.Offset, 10)
			if o.Kind == Bitmap {
				val += ":" + strconv.Itoa(rec.RowInBlock)
			}
			emit(key, []byte(val))
			return nil
		},
		Combine: func(key string, values [][]byte) [][]byte {
			return dedupe(values)
		},
		NumReducers: numReducers,
		ReduceTask: func(task int, groups []mapreduce.Group, emit mapreduce.Emit) error {
			return ix.writeIndexFile(fs, task, groups)
		},
	}
	stats, err := mapreduce.Run(cfg, job)
	if err != nil {
		return nil, nil, err
	}
	return ix, stats, nil
}

func baseInput(fs *dfs.FS, o Options) (mapreduce.InputFormat, error) {
	switch o.BaseFormat {
	case TextFile:
		return &mapreduce.TextInput{FS: fs, Dir: o.BaseDir}, nil
	case RCFile:
		return &mapreduce.RCInput{FS: fs, Dir: o.BaseDir, Schema: o.Schema}, nil
	default:
		return nil, fmt.Errorf("hiveindex: unknown base format %v", o.BaseFormat)
	}
}

// groupKey builds the shuffle key: dims + file (+ block offset for bitmaps,
// which index per block rather than per file).
func (ix *Index) groupKey(rec mapreduce.Record) (string, error) {
	var b strings.Builder
	for _, ci := range ix.dimCols {
		f, ok := storage.TextFieldBytes(rec.Data, ci)
		if !ok {
			return "", fmt.Errorf("hiveindex: record lacks field %d: %q", ci, rec.Data)
		}
		b.Write(f)
		b.WriteByte('\x01')
	}
	b.WriteString(rec.Path)
	if ix.Kind == Bitmap {
		b.WriteByte('\x01')
		b.WriteString(strconv.FormatInt(rec.Offset, 10))
	}
	return b.String(), nil
}

func dedupe(values [][]byte) [][]byte {
	seen := make(map[string]bool, len(values))
	out := values[:0]
	for _, v := range values {
		s := string(v)
		if !seen[s] {
			seen[s] = true
			out = append(out, v)
		}
	}
	return out
}

// writeIndexFile writes one reduce task's groups as index-table rows.
func (ix *Index) writeIndexFile(fs *dfs.FS, task int, groups []mapreduce.Group) error {
	if len(groups) == 0 {
		return nil
	}
	name := fmt.Sprintf("%s/part-r-%05d", ix.IndexDir, task)
	w, err := fs.Create(name)
	if err != nil {
		return err
	}
	var tw *storage.TextWriter
	var rw *storage.RCWriter
	if ix.IndexFormat == RCFile {
		rw = storage.NewRCWriter(w, ix.indexSchema, ix.RowGroupRows)
		if ix.DisableEncoding {
			rw.DisableEncoding()
		}
	} else {
		tw = storage.NewTextWriter(w)
	}
	for _, g := range groups {
		row, err := ix.indexRow(g)
		if err != nil {
			return err
		}
		if rw != nil {
			err = rw.WriteRow(row)
		} else {
			err = tw.WriteRow(row)
		}
		if err != nil {
			return err
		}
	}
	if rw != nil {
		if err := rw.Close(); err != nil {
			return err
		}
		return storage.WriteGroupIndex(fs, name, rw.GroupOffsets())
	}
	return tw.Close()
}

// indexRow converts one shuffled group into an index-table row.
func (ix *Index) indexRow(g mapreduce.Group) (storage.Row, error) {
	parts := strings.Split(g.Key, "\x01")
	wantParts := len(ix.Cols) + 1
	if ix.Kind == Bitmap {
		wantParts++
	}
	if len(parts) != wantParts {
		return nil, fmt.Errorf("hiveindex: bad group key %q", g.Key)
	}
	row := make(storage.Row, 0, ix.indexSchema.Len())
	for i := range ix.Cols {
		v, err := storage.ParseValue(ix.Schema.Col(ix.dimCols[i]).Kind, parts[i])
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	row = append(row, storage.Str(parts[len(ix.Cols)])) // _bucketname

	switch ix.Kind {
	case Bitmap:
		// One entry per block: _offsets is the block offset, _bitmaps the
		// row positions inside the block.
		row = append(row, storage.Str(parts[len(ix.Cols)+1]))
		bm := newBitmap()
		for _, v := range g.Values {
			s := string(v)
			if j := strings.IndexByte(s, ':'); j >= 0 {
				if r, err := strconv.Atoi(s[j+1:]); err == nil {
					bm.set(r)
				}
			}
		}
		row = append(row, storage.Str(bm.encode()))
	default:
		offs := make([]int64, 0, len(g.Values))
		for _, v := range g.Values {
			n, err := strconv.ParseInt(string(v), 10, 64)
			if err != nil {
				return nil, err
			}
			offs = append(offs, n)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		row = append(row, storage.Str(encodeOffsets(offs)))
		if ix.Kind == Aggregate {
			row = append(row, storage.Int64(int64(len(g.Values))))
		}
	}
	return row, nil
}

func encodeOffsets(offs []int64) string {
	parts := make([]string, len(offs))
	for i, o := range offs {
		parts[i] = strconv.FormatInt(o, 10)
	}
	return strings.Join(parts, ";")
}

func decodeOffsets(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ";")
	out := make([]int64, len(parts))
	for i, p := range parts {
		n, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("hiveindex: bad offsets %q", s)
		}
		out[i] = n
	}
	return out, nil
}

// SizeBytes returns the on-disk size of the index table (Tables 2 and 5).
func (ix *Index) SizeBytes(fs *dfs.FS) int64 {
	files, err := fs.ListFiles(ix.IndexDir)
	if err != nil {
		return 0
	}
	var n int64
	for _, f := range files {
		n += f.Size
	}
	return n
}

// bitmap is a dense row-position bitmap, Hive's array<bigint> _bitmaps.
type bitmapT struct{ words []uint64 }

func newBitmap() *bitmapT { return &bitmapT{} }

func (b *bitmapT) set(i int) {
	w := i / 64
	for len(b.words) <= w {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << (uint(i) % 64)
}

func (b *bitmapT) get(i int) bool {
	w := i / 64
	if w >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<(uint(i)%64)) != 0
}

func (b *bitmapT) encode() string {
	parts := make([]string, len(b.words))
	for i, w := range b.words {
		parts[i] = strconv.FormatUint(w, 16)
	}
	return strings.Join(parts, ";")
}

func decodeBitmap(s string) (*bitmapT, error) {
	b := newBitmap()
	if s == "" {
		return b, nil
	}
	for _, p := range strings.Split(s, ";") {
		w, err := strconv.ParseUint(p, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("hiveindex: bad bitmap %q", s)
		}
		b.words = append(b.words, w)
	}
	return b, nil
}

// union merges other into b.
func (b *bitmapT) union(other *bitmapT) {
	for len(b.words) < len(other.words) {
		b.words = append(b.words, 0)
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}
