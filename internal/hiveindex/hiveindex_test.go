package hiveindex

import (
	"math/rand"
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/mapreduce"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

func testCfg() *cluster.Config {
	c := cluster.Default()
	c.Workers = 4
	return c
}

func testSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "userId", Kind: storage.KindInt64},
		storage.Column{Name: "regionId", Kind: storage.KindInt64},
		storage.Column{Name: "power", Kind: storage.KindFloat64},
	)
}

// makeRows generates deterministic rows: userId cycles 0..49, regionId
// 0..4.
func makeRows(n int) []storage.Row {
	rng := rand.New(rand.NewSource(11))
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{
			storage.Int64(int64(i % 50)),
			storage.Int64(int64(i % 5)),
			storage.Float64(rng.Float64() * 10),
		}
	}
	return rows
}

func setupText(t *testing.T, blockSize int64, n int) (*dfs.FS, []storage.Row) {
	t.Helper()
	fs := dfs.New(blockSize)
	rows := makeRows(n)
	if err := storage.WriteTextRows(fs, "/tbl/part-0", rows); err != nil {
		t.Fatal(err)
	}
	return fs, rows
}

func setupRC(t *testing.T, blockSize int64, n, groupRows int) (*dfs.FS, []storage.Row) {
	t.Helper()
	fs := dfs.New(blockSize)
	rows := makeRows(n)
	if _, err := storage.WriteRCRows(fs, "/tbl/part-0", testSchema(), rows, groupRows); err != nil {
		t.Fatal(err)
	}
	return fs, rows
}

func TestCompactBuildAndFilterText(t *testing.T) {
	fs, rows := setupText(t, 256, 300)
	ix, stats, err := Build(testCfg(), fs, Options{
		Name: "c1", Kind: Compact,
		BaseDir: "/tbl", BaseFormat: TextFile,
		Schema: testSchema(), Cols: []string{"userId", "regionId"},
		IndexDir: "/idx", IndexFormat: TextFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.InputRecords != 300 {
		t.Errorf("build scanned %d records", stats.InputRecords)
	}
	if ix.SizeBytes(fs) <= 0 {
		t.Error("index table is empty")
	}
	// Filter userId in [10,12].
	ranges := map[string]gridfile.Range{
		"userId": {Lo: storage.Int64(10), Hi: storage.Int64(12)},
	}
	fr, err := ix.Filter(testCfg(), fs, ranges)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Entries == 0 {
		t.Fatal("no index entries matched")
	}
	// Run the filtered scan; every matching row must appear.
	input, err := ix.BaseInput(fs, fr)
	if err != nil {
		t.Fatal(err)
	}
	got := countMatching(t, input, ranges)
	want := 0
	for _, r := range rows {
		if r[0].I >= 10 && r[0].I <= 12 {
			want++
		}
	}
	if got != want {
		t.Errorf("filtered scan found %d matches, want %d", got, want)
	}
}

func countMatching(t *testing.T, input mapreduce.InputFormat, ranges map[string]gridfile.Range) int {
	t.Helper()
	schema := testSchema()
	count := 0
	_, err := mapreduce.Run(testCfg(), &mapreduce.Job{
		Name:  "probe",
		Input: input,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			row, err := storage.DecodeTextRow(schema, string(rec.Data))
			if err != nil {
				return err
			}
			for name, r := range ranges {
				if !r.Contains(row[schema.ColIndex(name)]) {
					return nil
				}
			}
			emit("1", nil)
			return nil
		},
		Output: func(k string, v []byte) { count++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	return count
}

func TestCompactOnRCFiltersSplitsOnly(t *testing.T) {
	fs, rows := setupRC(t, 512, 400, 16)
	ix, _, err := Build(testCfg(), fs, Options{
		Name: "c2", Kind: Compact,
		BaseDir: "/tbl", BaseFormat: RCFile,
		Schema: testSchema(), Cols: []string{"userId"},
		IndexDir: "/idx", IndexFormat: RCFile, RowGroupRows: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	ranges := map[string]gridfile.Range{
		"userId": {Lo: storage.Int64(7), Hi: storage.Int64(7)},
	}
	fr, err := ix.Filter(testCfg(), fs, ranges)
	if err != nil {
		t.Fatal(err)
	}
	input, err := ix.BaseInput(fs, fr)
	if err != nil {
		t.Fatal(err)
	}
	// Correctness: all userId==7 rows found after split filtering.
	got := countMatching(t, input, ranges)
	want := 0
	for _, r := range rows {
		if r[0].I == 7 {
			want++
		}
	}
	if got != want || want == 0 {
		t.Errorf("matches = %d, want %d", got, want)
	}
	// Compact on RC does NOT filter row groups: the scan reads rows beyond
	// the matches (userId 7 appears in every 50-row stripe, i.e. most
	// groups, but the point is whole splits are read).
	stats, err := mapreduce.Run(testCfg(), &mapreduce.Job{
		Name:  "volume",
		Input: input,
		Map:   func(rec mapreduce.Record, emit mapreduce.Emit) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.InputRecords <= int64(want) {
		t.Errorf("compact should over-read: %d records for %d matches", stats.InputRecords, want)
	}
}

func TestBitmapFiltersRows(t *testing.T) {
	fs, rows := setupRC(t, 1<<20, 400, 16)
	ix, _, err := Build(testCfg(), fs, Options{
		Name: "b1", Kind: Bitmap,
		BaseDir: "/tbl", BaseFormat: RCFile,
		Schema: testSchema(), Cols: []string{"userId"},
		IndexDir: "/idx", IndexFormat: TextFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	ranges := map[string]gridfile.Range{
		"userId": {Lo: storage.Int64(7), Hi: storage.Int64(7)},
	}
	fr, err := ix.Filter(testCfg(), fs, ranges)
	if err != nil {
		t.Fatal(err)
	}
	input, err := ix.BaseInput(fs, fr)
	if err != nil {
		t.Fatal(err)
	}
	// The bitmap reader must deliver exactly the matching rows.
	stats, err := mapreduce.Run(testCfg(), &mapreduce.Job{
		Name:  "bitmap-scan",
		Input: input,
		Map:   func(rec mapreduce.Record, emit mapreduce.Emit) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for _, r := range rows {
		if r[0].I == 7 {
			want++
		}
	}
	if stats.InputRecords != want {
		t.Errorf("bitmap scan read %d records, want exactly %d", stats.InputRecords, want)
	}
}

func TestAggregateIndexRewrite(t *testing.T) {
	fs, rows := setupText(t, 1<<20, 500)
	ix, _, err := Build(testCfg(), fs, Options{
		Name: "a1", Kind: Aggregate,
		BaseDir: "/tbl", BaseFormat: TextFile,
		Schema: testSchema(), Cols: []string{"regionId"},
		IndexDir: "/idx", IndexFormat: TextFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	ranges := map[string]gridfile.Range{
		"regionId": {Lo: storage.Int64(1), Hi: storage.Int64(3)},
	}
	counts, _, err := ix.AggregateCounts(testCfg(), fs, ranges, []string{"regionId"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{}
	for _, r := range rows {
		if r[1].I >= 1 && r[1].I <= 3 {
			want[r[1].String()]++
		}
	}
	if len(counts) != len(want) {
		t.Fatalf("groups = %v, want %v", counts, want)
	}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("count[%s] = %d, want %d", k, counts[k], v)
		}
	}
	// Rewrite restrictions: non-indexed GROUP BY column is rejected.
	if _, _, err := ix.AggregateCounts(testCfg(), fs, ranges, []string{"power"}); err == nil {
		t.Error("uncovered GROUP BY accepted")
	}
	// Compact index cannot answer it at all.
	cix := &Index{Options: Options{Kind: Compact}}
	if _, _, err := cix.AggregateCounts(testCfg(), fs, ranges, nil); err == nil {
		t.Error("compact index answered aggregate rewrite")
	}
}

func TestIndexSizeGrowsWithDims(t *testing.T) {
	// The paper's Section 2.2 limitation 1: more distinct combinations ->
	// bigger index table.
	fs, _ := setupText(t, 1<<20, 1000)
	small, _, err := Build(testCfg(), fs, Options{
		Name: "s", Kind: Compact, BaseDir: "/tbl", BaseFormat: TextFile,
		Schema: testSchema(), Cols: []string{"regionId"},
		IndexDir: "/idx_small", IndexFormat: TextFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := Build(testCfg(), fs, Options{
		Name: "b", Kind: Compact, BaseDir: "/tbl", BaseFormat: TextFile,
		Schema: testSchema(), Cols: []string{"userId", "regionId", "power"},
		IndexDir: "/idx_big", IndexFormat: TextFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.SizeBytes(fs) <= small.SizeBytes(fs) {
		t.Errorf("3-dim index (%d) should exceed 1-dim index (%d)",
			big.SizeBytes(fs), small.SizeBytes(fs))
	}
}

func TestSplitFilterPrunes(t *testing.T) {
	// Rows sorted by userId so matches cluster in few splits: the filter
	// must prune most splits (the favourable case of Section 6).
	fs := dfs.New(512)
	rows := makeRows(2000)
	// Sort by userId (stable by construction: generate directly).
	sorted := make([]storage.Row, 0, len(rows))
	for u := int64(0); u < 50; u++ {
		for _, r := range rows {
			if r[0].I == u {
				sorted = append(sorted, r)
			}
		}
	}
	if err := storage.WriteTextRows(fs, "/tbl/part-0", sorted); err != nil {
		t.Fatal(err)
	}
	ix, _, err := Build(testCfg(), fs, Options{
		Name: "c3", Kind: Compact, BaseDir: "/tbl", BaseFormat: TextFile,
		Schema: testSchema(), Cols: []string{"userId"},
		IndexDir: "/idx", IndexFormat: TextFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := ix.Filter(testCfg(), fs, map[string]gridfile.Range{
		"userId": {Lo: storage.Int64(3), Hi: storage.Int64(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	allSplits, _ := fs.DirSplits("/tbl")
	kept := 0
	for _, s := range allSplits {
		if fr.SplitFilter(s) {
			kept++
		}
	}
	if kept == 0 || kept >= len(allSplits) {
		t.Errorf("split filter kept %d of %d", kept, len(allSplits))
	}
}

func TestBitmapOps(t *testing.T) {
	b := newBitmap()
	for _, i := range []int{0, 3, 64, 130} {
		b.set(i)
	}
	for _, i := range []int{0, 3, 64, 130} {
		if !b.get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	for _, i := range []int{1, 63, 129, 1000} {
		if b.get(i) {
			t.Errorf("bit %d spuriously set", i)
		}
	}
	back, err := decodeBitmap(b.encode())
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 3, 64, 130} {
		if !back.get(i) {
			t.Errorf("bit %d lost in round trip", i)
		}
	}
	other := newBitmap()
	other.set(200)
	back.union(other)
	if !back.get(200) || !back.get(0) {
		t.Error("union lost bits")
	}
	if _, err := decodeBitmap("zz;"); err == nil {
		t.Error("bad bitmap accepted")
	}
}

func TestOffsetsCodec(t *testing.T) {
	offs := []int64{0, 9, 1024, 99999}
	back, err := decodeOffsets(encodeOffsets(offs))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(offs) {
		t.Fatalf("len = %d", len(back))
	}
	for i := range offs {
		if back[i] != offs[i] {
			t.Errorf("offset %d: %d != %d", i, back[i], offs[i])
		}
	}
	if got, _ := decodeOffsets(""); got != nil {
		t.Error("empty offsets should decode to nil")
	}
	if _, err := decodeOffsets("1;x"); err == nil {
		t.Error("bad offsets accepted")
	}
}

func TestBuildUnknownColumn(t *testing.T) {
	fs, _ := setupText(t, 1<<20, 10)
	_, _, err := Build(testCfg(), fs, Options{
		Name: "bad", Kind: Compact, BaseDir: "/tbl", BaseFormat: TextFile,
		Schema: testSchema(), Cols: []string{"ghost"},
		IndexDir: "/idx", IndexFormat: TextFile,
	})
	if err == nil {
		t.Error("unknown column accepted")
	}
}
