package kvstore

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
)

func TestPutGet(t *testing.T) {
	s := New()
	s.Put("7_13", []byte("gfu"))
	v, ok := s.Get("7_13")
	if !ok || string(v) != "gfu" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := s.Get("1_1"); ok {
		t.Error("missing key returned ok")
	}
	s.Put("7_13", []byte("gfu2"))
	v, _ = s.Get("7_13")
	if string(v) != "gfu2" {
		t.Error("Put did not overwrite")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestMultiGetAlignment(t *testing.T) {
	s := New()
	s.Put("a", []byte("1"))
	s.Put("c", []byte("3"))
	got := s.MultiGet([]string{"a", "b", "c"})
	if string(got[0]) != "1" || got[1] != nil || string(got[2]) != "3" {
		t.Errorf("MultiGet = %v", got)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	s.Put("x", []byte("1"))
	s.Delete("x")
	if _, ok := s.Get("x"); ok {
		t.Error("key survived delete")
	}
	s.Delete("never-existed") // must not panic
}

func TestScanRange(t *testing.T) {
	s := New()
	for _, k := range []string{"d", "a", "c", "b", "e"} {
		s.Put(k, []byte(k))
	}
	got := s.Scan("b", "e")
	want := []string{"b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Scan = %v", got)
	}
	for i, p := range got {
		if p.Key != want[i] {
			t.Errorf("Scan[%d] = %q, want %q", i, p.Key, want[i])
		}
	}
	if all := s.Scan("", ""); len(all) != 5 {
		t.Errorf("full scan = %d keys, want 5", len(all))
	}
}

func TestScanAfterMutation(t *testing.T) {
	s := New()
	s.Put("b", nil)
	_ = s.Scan("", "") // builds sorted view
	s.Put("a", nil)    // invalidates it
	keys := s.Keys()
	if !sort.StringsAreSorted(keys) || len(keys) != 2 || keys[0] != "a" {
		t.Errorf("Keys after mutation = %v", keys)
	}
	s.Delete("a")
	if got := s.Keys(); len(got) != 1 || got[0] != "b" {
		t.Errorf("Keys after delete = %v", got)
	}
}

func TestScanPrefix(t *testing.T) {
	s := New()
	for _, k := range []string{"meta/min", "meta/max", "gfu/1_1", "gfu/1_2", "gfu/2_1", "h"} {
		s.Put(k, nil)
	}
	got := s.ScanPrefix("gfu/")
	if len(got) != 3 {
		t.Fatalf("ScanPrefix = %d pairs, want 3", len(got))
	}
	for _, p := range got {
		if p.Key[:4] != "gfu/" {
			t.Errorf("stray key %q", p.Key)
		}
	}
	if !s.HasPrefix("meta/") || s.HasPrefix("zz") {
		t.Error("HasPrefix wrong")
	}
}

func TestPrefixEndEdge(t *testing.T) {
	s := New()
	s.Put("\xff\xff", []byte("hi"))
	s.Put("\xfe", []byte("lo"))
	got := s.ScanPrefix("\xff")
	if len(got) != 1 || got[0].Key != "\xff\xff" {
		t.Errorf("ScanPrefix(0xff) = %v", got)
	}
}

func TestStatsAndSim(t *testing.T) {
	s := New()
	s.PutBatch(map[string][]byte{"a": nil, "b": nil})
	s.Get("a")
	s.MultiGet([]string{"a", "b", "c"})
	s.Scan("", "")
	st := s.Stats()
	if st.Puts != 2 || st.Gets != 4 || st.Scans != 1 || st.ScannedKeys != 2 {
		t.Errorf("Stats = %+v", st)
	}
	cfg := cluster.Default()
	if st.SimSeconds(cfg) <= 0 {
		t.Error("SimSeconds should be positive")
	}
	d := st.Sub(Stats{Gets: 1})
	if d.Gets != 3 {
		t.Errorf("Sub.Gets = %d, want 3", d.Gets)
	}
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero")
	}
}

func TestSizeBytes(t *testing.T) {
	s := New()
	s.Put("key1", []byte("value1")) // 4 + 6
	s.Put("k", []byte("v"))         // 1 + 1
	if got := s.SizeBytes(); got != 12 {
		t.Errorf("SizeBytes = %d, want 12", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("%d_%d", g, i)
				s.Put(k, []byte(k))
				s.Get(k)
				if i%50 == 0 {
					s.Scan("", "")
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Errorf("Len = %d, want 1600", s.Len())
	}
}

// Property: Scan(start, end) returns exactly the sorted keys in [start, end).
func TestScanMatchesSortProperty(t *testing.T) {
	f := func(keys []string, start, end string) bool {
		s := New()
		uniq := map[string]bool{}
		for _, k := range keys {
			s.Put(k, []byte(k))
			uniq[k] = true
		}
		var want []string
		for k := range uniq {
			if (start == "" || k >= start) && (end == "" || k < end) {
				want = append(want, k)
			}
		}
		sort.Strings(want)
		got := s.Scan(start, end)
		gotKeys := make([]string, len(got))
		for i, p := range got {
			gotKeys[i] = p.Key
		}
		if len(want) == 0 && len(gotKeys) == 0 {
			return true
		}
		return reflect.DeepEqual(gotKeys, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: ScanPrefix returns exactly the keys with that prefix.
func TestScanPrefixProperty(t *testing.T) {
	f := func(keys []string, prefix string) bool {
		s := New()
		uniq := map[string]bool{}
		for _, k := range keys {
			s.Put(k, nil)
			uniq[k] = true
		}
		count := 0
		for k := range uniq {
			if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
				count++
			}
		}
		return len(s.ScanPrefix(prefix)) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
