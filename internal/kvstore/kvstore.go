// Package kvstore models the distributed key-value store the paper uses to
// hold DGFIndex <GFUKey, GFUValue> pairs (HBase in the paper's deployment;
// it also names Cassandra and Voldemort as alternatives).
//
// DGFIndex needs only four operations from the store — Put, Get, MultiGet
// and a key-ordered Scan — plus an account of how many round trips a query
// spends on index access, because the paper's figures break query time into
// "read index and other" versus "read data and process". The Store executes
// for real, in memory, and counts operations; cluster.Config converts the
// counts into simulated seconds.
package kvstore

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
)

// Store is a sorted, concurrency-safe key-value map with operation counting.
type Store struct {
	mu     sync.RWMutex
	data   map[string][]byte
	sorted []string // lazily maintained sorted key view
	dirty  bool

	gets    atomic.Int64 // keys requested via Get/MultiGet
	puts    atomic.Int64 // keys written
	scanned atomic.Int64 // keys returned by Scan
	scans   atomic.Int64 // scan calls
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string][]byte)}
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// SizeBytes returns the total payload size: keys plus values. This is the
// "index size" reported for DGFIndex in Tables 2 and 5.
func (s *Store) SizeBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for k, v := range s.data {
		n += int64(len(k) + len(v))
	}
	return n
}

// Put stores value under key, replacing any existing value.
func (s *Store) Put(key string, value []byte) {
	s.mu.Lock()
	if _, exists := s.data[key]; !exists {
		s.dirty = true
	}
	s.data[key] = value
	s.mu.Unlock()
	s.puts.Add(1)
}

// PutBatch stores many pairs in one call (one simulated round trip per
// cluster.Config.KVBatchSize keys, like HBase's buffered mutator).
func (s *Store) PutBatch(pairs map[string][]byte) {
	s.mu.Lock()
	for k, v := range pairs {
		if _, exists := s.data[k]; !exists {
			s.dirty = true
		}
		s.data[k] = v
	}
	s.mu.Unlock()
	s.puts.Add(int64(len(pairs)))
}

// Get fetches the value under key. ok is false if absent.
func (s *Store) Get(key string) (value []byte, ok bool) {
	s.mu.RLock()
	value, ok = s.data[key]
	s.mu.RUnlock()
	s.gets.Add(1)
	return value, ok
}

// MultiGet fetches many keys; missing keys yield nil entries. The result is
// positionally aligned with keys.
func (s *Store) MultiGet(keys []string) [][]byte {
	out := make([][]byte, len(keys))
	s.mu.RLock()
	for i, k := range keys {
		out[i] = s.data[k]
	}
	s.mu.RUnlock()
	s.gets.Add(int64(len(keys)))
	return out
}

// Delete removes key if present.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	if _, ok := s.data[key]; ok {
		delete(s.data, key)
		s.dirty = true
	}
	s.mu.Unlock()
}

// Pair is one key-value entry returned by Scan.
type Pair struct {
	Key   string
	Value []byte
}

// Scan returns all pairs with start <= key < end in key order. An empty end
// means "to the last key". An empty start means "from the first key".
func (s *Store) Scan(start, end string) []Pair {
	s.mu.Lock()
	s.ensureSortedLocked()
	keys := s.sorted
	lo := 0
	if start != "" {
		lo = sort.SearchStrings(keys, start)
	}
	hi := len(keys)
	if end != "" {
		hi = sort.SearchStrings(keys, end)
	}
	if hi < lo {
		hi = lo // inverted range scans nothing
	}
	var out []Pair
	for _, k := range keys[lo:hi] {
		out = append(out, Pair{Key: k, Value: s.data[k]})
	}
	s.mu.Unlock()
	s.scans.Add(1)
	s.scanned.Add(int64(len(out)))
	return out
}

// ScanPrefix returns all pairs whose key starts with prefix, in key order.
func (s *Store) ScanPrefix(prefix string) []Pair {
	if prefix == "" {
		return s.Scan("", "")
	}
	// The smallest string greater than every string with this prefix.
	end := prefixEnd(prefix)
	return s.Scan(prefix, end)
}

func prefixEnd(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return "" // prefix of all 0xff: scan to the end
}

// Keys returns all keys in sorted order (test helper and metadata listing).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSortedLocked()
	out := make([]string, len(s.sorted))
	copy(out, s.sorted)
	return out
}

func (s *Store) ensureSortedLocked() {
	if !s.dirty && len(s.sorted) == len(s.data) {
		return
	}
	s.sorted = s.sorted[:0]
	for k := range s.data {
		s.sorted = append(s.sorted, k)
	}
	sort.Strings(s.sorted)
	s.dirty = false
}

// Stats is a snapshot of the operation counters.
type Stats struct {
	Gets, Puts, ScannedKeys, Scans int64
}

// Stats returns the counters accumulated since the last Reset.
func (s *Store) Stats() Stats {
	return Stats{
		Gets:        s.gets.Load(),
		Puts:        s.puts.Load(),
		ScannedKeys: s.scanned.Load(),
		Scans:       s.scans.Load(),
	}
}

// ResetStats zeroes the operation counters.
func (s *Store) ResetStats() {
	s.gets.Store(0)
	s.puts.Store(0)
	s.scanned.Store(0)
	s.scans.Store(0)
}

// SimSeconds converts a counter snapshot into simulated store access time
// under the given cluster model. Reads and writes are batched; scans cost
// one round trip plus per-key transfer.
func (st Stats) SimSeconds(cfg *cluster.Config) float64 {
	return cfg.KVSeconds(st.Gets) + cfg.KVSeconds(st.Puts) +
		float64(st.Scans)*cfg.KVBatchRTTMs/1e3 + float64(st.ScannedKeys)*cfg.KVPerOpUs/1e6
}

// Sub returns the counter delta st - prev, for attributing one query's
// index-access cost.
func (st Stats) Sub(prev Stats) Stats {
	return Stats{
		Gets:        st.Gets - prev.Gets,
		Puts:        st.Puts - prev.Puts,
		ScannedKeys: st.ScannedKeys - prev.ScannedKeys,
		Scans:       st.Scans - prev.Scans,
	}
}

// HasPrefix reports whether any stored key begins with prefix.
func (s *Store) HasPrefix(prefix string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSortedLocked()
	i := sort.SearchStrings(s.sorted, prefix)
	return i < len(s.sorted) && strings.HasPrefix(s.sorted[i], prefix)
}
