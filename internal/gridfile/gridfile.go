// Package gridfile implements the grid-file geometry underlying DGFIndex
// (Nievergelt, Hinterberger, Sevcik: "The Grid File", TODS 1984, as used in
// Section 4 of the DGFIndex paper).
//
// A splitting policy divides each index dimension into equal-width,
// left-closed right-open intervals starting at a minimum coordinate; the
// cross product of the per-dimension intervals tiles the data space into
// grid file units (GFUs). Every record standardises to the GFU containing
// it; a query region decomposes into the GFUs it fully contains (the inner
// region, answerable from pre-computed headers) and the GFUs it merely
// overlaps (the boundary region, which must be scanned).
package gridfile

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// Dimension is one axis of the grid with its splitting policy: the minimum
// coordinate and the interval width. Int64 and Time dimensions use exact
// integer arithmetic; Float64 dimensions use an epsilon-guarded floor.
type Dimension struct {
	Name string
	Kind storage.Kind
	// Min is the origin coordinate of cell 0.
	Min storage.Value
	// IntervalI is the cell width for KindInt64 (units of the value) and
	// KindTime (seconds).
	IntervalI int64
	// IntervalF is the cell width for KindFloat64.
	IntervalF float64
}

// floatEps absorbs float rounding so that a value lying exactly on a cell
// boundary standardises into the cell it opens (left-closed intervals).
const floatEps = 1e-9

// CellOf returns the index of the cell containing v. This is the paper's
// "standard" method: find the previous splitting-policy coordinate.
func (d Dimension) CellOf(v storage.Value) int64 {
	switch d.Kind {
	case storage.KindFloat64:
		return int64(floorDiv(v.AsFloat()-d.Min.AsFloat(), d.IntervalF))
	default: // KindInt64, KindTime
		return floorDivInt(v.AsInt()-d.Min.AsInt(), d.IntervalI)
	}
}

func floorDiv(num, den float64) float64 {
	q := num/den + floatEps
	f := float64(int64(q))
	if q < 0 && f != q {
		f--
	}
	return f
}

func floorDivInt(num, den int64) int64 {
	q := num / den
	if num%den != 0 && (num < 0) != (den < 0) {
		q--
	}
	return q
}

// CellStart returns the coordinate at which cell idx begins (the value that
// contributes to the GFUKey).
func (d Dimension) CellStart(idx int64) storage.Value {
	switch d.Kind {
	case storage.KindFloat64:
		return storage.Float64(d.Min.AsFloat() + float64(idx)*d.IntervalF)
	case storage.KindTime:
		return storage.TimeUnix(d.Min.AsInt() + idx*d.IntervalI)
	default:
		return storage.Int64(d.Min.AsInt() + idx*d.IntervalI)
	}
}

// Validate checks the dimension's splitting policy.
func (d Dimension) Validate() error {
	switch d.Kind {
	case storage.KindFloat64:
		if d.IntervalF <= 0 {
			return fmt.Errorf("gridfile: dimension %s: interval must be positive", d.Name)
		}
	case storage.KindInt64, storage.KindTime:
		if d.IntervalI <= 0 {
			return fmt.Errorf("gridfile: dimension %s: interval must be positive", d.Name)
		}
	default:
		return fmt.Errorf("gridfile: dimension %s: kind %v cannot be gridded", d.Name, d.Kind)
	}
	return nil
}

// ParseDimension builds a dimension from an IDXPROPERTIES entry such as
// 'userId'='1_1000' (min 1, interval 1000), 'discount'='0_0.01', or
// 'ts'='2012-12-01_1d' (day-unit interval; h and m units also accepted,
// and a bare number of seconds).
func ParseDimension(name string, kind storage.Kind, spec string) (Dimension, error) {
	i := strings.LastIndexByte(spec, '_')
	if i <= 0 || i == len(spec)-1 {
		return Dimension{}, fmt.Errorf("gridfile: dimension %s: bad policy %q, want min_interval", name, spec)
	}
	minStr, intStr := spec[:i], spec[i+1:]
	d := Dimension{Name: name, Kind: kind}
	min, err := storage.ParseValue(kind, minStr)
	if err != nil {
		return Dimension{}, fmt.Errorf("gridfile: dimension %s: min: %w", name, err)
	}
	d.Min = min
	switch kind {
	case storage.KindFloat64:
		f, err := strconv.ParseFloat(intStr, 64)
		if err != nil {
			return Dimension{}, fmt.Errorf("gridfile: dimension %s: interval: %w", name, err)
		}
		d.IntervalF = f
	case storage.KindTime:
		sec, err := parseTimeInterval(intStr)
		if err != nil {
			return Dimension{}, fmt.Errorf("gridfile: dimension %s: %w", name, err)
		}
		d.IntervalI = sec
	case storage.KindInt64:
		n, err := strconv.ParseInt(intStr, 10, 64)
		if err != nil {
			return Dimension{}, fmt.Errorf("gridfile: dimension %s: interval: %w", name, err)
		}
		d.IntervalI = n
	default:
		return Dimension{}, fmt.Errorf("gridfile: dimension %s: kind %v cannot be gridded", name, kind)
	}
	if err := d.Validate(); err != nil {
		return Dimension{}, err
	}
	return d, nil
}

func parseTimeInterval(s string) (int64, error) {
	unit := int64(1)
	switch {
	case strings.HasSuffix(s, "d"):
		unit, s = 24*3600, s[:len(s)-1]
	case strings.HasSuffix(s, "h"):
		unit, s = 3600, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		unit, s = 60, s[:len(s)-1]
	case strings.HasSuffix(s, "s"):
		unit, s = 1, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time interval %q", s)
	}
	return n * unit, nil
}

// Spec renders the dimension back into IDXPROPERTIES syntax.
func (d Dimension) Spec() string {
	switch d.Kind {
	case storage.KindFloat64:
		return d.Min.String() + "_" + strconv.FormatFloat(d.IntervalF, 'g', -1, 64)
	case storage.KindTime:
		if d.IntervalI%(24*3600) == 0 {
			return d.Min.String() + "_" + strconv.FormatInt(d.IntervalI/(24*3600), 10) + "d"
		}
		return d.Min.String() + "_" + strconv.FormatInt(d.IntervalI, 10) + "s"
	default:
		return d.Min.String() + "_" + strconv.FormatInt(d.IntervalI, 10)
	}
}

// Policy is a full splitting policy: one Dimension per indexed column.
type Policy struct {
	Dims []Dimension
}

// Validate checks every dimension.
func (p *Policy) Validate() error {
	if len(p.Dims) == 0 {
		return fmt.Errorf("gridfile: policy has no dimensions")
	}
	seen := map[string]bool{}
	for _, d := range p.Dims {
		if err := d.Validate(); err != nil {
			return err
		}
		lower := strings.ToLower(d.Name)
		if seen[lower] {
			return fmt.Errorf("gridfile: duplicate dimension %s", d.Name)
		}
		seen[lower] = true
	}
	return nil
}

// DimIndex returns the position of the named dimension, or -1.
func (p *Policy) DimIndex(name string) int {
	for i, d := range p.Dims {
		if strings.EqualFold(d.Name, name) {
			return i
		}
	}
	return -1
}

// CellsOf standardises a record's dimension values into cell coordinates.
// values must align with p.Dims.
func (p *Policy) CellsOf(values []storage.Value) []int64 {
	cells := make([]int64, len(p.Dims))
	for i, d := range p.Dims {
		cells[i] = d.CellOf(values[i])
	}
	return cells
}

// KeySeparator joins the coordinates of a GFUKey ("7_13" in the paper).
const KeySeparator = "_"

// Key renders cell coordinates as a GFUKey: the underscore-joined cell-start
// coordinates, exactly as in the paper's Figure 5 ("7_13").
func (p *Policy) Key(cells []int64) string {
	var buf []byte
	for i, d := range p.Dims {
		if i > 0 {
			buf = append(buf, KeySeparator...)
		}
		buf = d.CellStart(cells[i]).AppendText(buf)
	}
	return string(buf)
}

// ParseKey recovers cell coordinates from a GFUKey.
func (p *Policy) ParseKey(key string) ([]int64, error) {
	parts := strings.Split(key, KeySeparator)
	// Time coordinates may themselves not contain the separator (dates use
	// dashes), so a plain split is unambiguous.
	if len(parts) != len(p.Dims) {
		return nil, fmt.Errorf("gridfile: key %q has %d parts, want %d", key, len(parts), len(p.Dims))
	}
	cells := make([]int64, len(p.Dims))
	for i, d := range p.Dims {
		v, err := storage.ParseValue(d.Kind, parts[i])
		if err != nil {
			return nil, fmt.Errorf("gridfile: key %q part %d: %w", key, i, err)
		}
		cells[i] = d.CellOf(v)
	}
	return cells, nil
}

// Range is a per-dimension query constraint: Lo OP v OP Hi, where the OPs
// are > / >= and < / <= according to the open flags. A nil-bound side is
// expressed by Unbounded low/high values supplied by the caller (the planner
// substitutes stored data minima/maxima for missing dimensions, as the paper
// does for partially specified queries).
type Range struct {
	Lo, Hi         storage.Value
	LoOpen, HiOpen bool // true for strict inequalities (> and <)
	// LoUnbounded / HiUnbounded mark one-sided predicates (e.g. the
	// l_quantity < 24 conjunct of TPC-H Q6); the corresponding bound value
	// is ignored. The planner clamps unbounded sides to the indexed data's
	// observed extent.
	LoUnbounded, HiUnbounded bool
}

// Contains reports whether v satisfies the range.
func (r Range) Contains(v storage.Value) bool {
	if !r.LoUnbounded {
		cl := storage.Compare(v, r.Lo)
		if cl < 0 || (cl == 0 && r.LoOpen) {
			return false
		}
	}
	if !r.HiUnbounded {
		ch := storage.Compare(v, r.Hi)
		if ch > 0 || (ch == 0 && r.HiOpen) {
			return false
		}
	}
	return true
}

// Intersect combines two constraints on the same column into their
// conjunction.
func (r Range) Intersect(other Range) Range {
	out := r
	if !other.LoUnbounded {
		if out.LoUnbounded {
			out.Lo, out.LoOpen, out.LoUnbounded = other.Lo, other.LoOpen, false
		} else {
			c := storage.Compare(other.Lo, out.Lo)
			if c > 0 || (c == 0 && other.LoOpen) {
				out.Lo, out.LoOpen = other.Lo, other.LoOpen
			}
		}
	}
	if !other.HiUnbounded {
		if out.HiUnbounded {
			out.Hi, out.HiOpen, out.HiUnbounded = other.Hi, other.HiOpen, false
		} else {
			c := storage.Compare(other.Hi, out.Hi)
			if c < 0 || (c == 0 && other.HiOpen) {
				out.Hi, out.HiOpen = other.Hi, other.HiOpen
			}
		}
	}
	return out
}

// CellRange is an inclusive range of cell indices along one dimension.
type CellRange struct {
	Lo, Hi int64 // inclusive; empty when Lo > Hi
}

// Empty reports whether the range covers no cells.
func (c CellRange) Empty() bool { return c.Lo > c.Hi }

// Count returns the number of cells in the range.
func (c CellRange) Count() int64 {
	if c.Empty() {
		return 0
	}
	return c.Hi - c.Lo + 1
}

// Clamp intersects the range with [lo, hi].
func (c CellRange) Clamp(lo, hi int64) CellRange {
	if c.Lo < lo {
		c.Lo = lo
	}
	if c.Hi > hi {
		c.Hi = hi
	}
	return c
}

// Decomposition is the result of overlaying a query region on the grid: the
// cells that must be read (overlapping the query) and the subset that are
// inner (fully contained, answerable from pre-computed headers). Both are
// hyper-rectangles in cell space, per the geometry in the paper's Figure 7.
type Decomposition struct {
	policy *Policy
	// Read is the per-dimension inclusive cell range overlapping the query
	// (region R in the paper).
	Read []CellRange
	// Inner is the per-dimension inclusive cell range fully inside the
	// query (region I). The inner region exists only when every dimension
	// has a non-empty inner range.
	Inner []CellRange
}

// Decompose overlays the per-dimension ranges (aligned with p.Dims) onto the
// grid.
func (p *Policy) Decompose(ranges []Range) (Decomposition, error) {
	if len(ranges) != len(p.Dims) {
		return Decomposition{}, fmt.Errorf("gridfile: %d ranges for %d dimensions", len(ranges), len(p.Dims))
	}
	dec := Decomposition{
		policy: p,
		Read:   make([]CellRange, len(ranges)),
		Inner:  make([]CellRange, len(ranges)),
	}
	for i, r := range ranges {
		d := p.Dims[i]
		if !r.LoUnbounded && !r.HiUnbounded && storage.Compare(r.Lo, r.Hi) > 0 {
			return Decomposition{}, fmt.Errorf("gridfile: dimension %s: empty range [%v, %v]", d.Name, r.Lo, r.Hi)
		}
		// Discrete kinds admit exact closed-bound geometry: v <= h over
		// integers is v < h+1, which lets a query aligned with cell
		// boundaries classify its edge cells as inner instead of boundary.
		if d.Kind != storage.KindFloat64 && !r.HiUnbounded && !r.HiOpen {
			switch d.Kind {
			case storage.KindTime:
				r.Hi = storage.TimeUnix(r.Hi.AsInt() + 1)
			default:
				r.Hi = storage.Int64(r.Hi.AsInt() + 1)
			}
			r.HiOpen = true
		}
		// Unbounded sides take sentinel cell bounds; the planner clamps to
		// the indexed data's extent before enumerating (ClampRead).
		readLo := unboundedLoCell
		if !r.LoUnbounded {
			readLo = d.CellOf(r.Lo)
			if r.LoOpen && d.Kind != storage.KindFloat64 {
				// For discrete kinds, v > lo means v >= lo+1.
				readLo = d.CellOf(storage.Int64(r.Lo.AsInt() + 1))
				if d.Kind == storage.KindTime {
					readLo = d.CellOf(storage.TimeUnix(r.Lo.AsInt() + 1))
				}
			}
		}
		readHi := unboundedHiCell
		if !r.HiUnbounded {
			readHi = d.CellOf(r.Hi)
			if r.HiOpen && atCellStart(d, r.Hi) {
				// v < hi with hi exactly on a boundary: the cell opening at
				// hi contains no qualifying values.
				readHi--
			}
		}
		dec.Read[i] = CellRange{Lo: readLo, Hi: readHi}

		// Inner range: cells [s, e) with every value satisfying the range.
		innerLo := readLo
		if !r.LoUnbounded && !cellFullyAboveLo(d, innerLo, r) {
			innerLo++
		}
		innerHi := readHi
		if !r.HiUnbounded && !cellFullyBelowHi(d, innerHi, r) {
			innerHi--
		}
		dec.Inner[i] = CellRange{Lo: innerLo, Hi: innerHi}
	}
	return dec, nil
}

// Sentinel cell bounds for unbounded range sides, far outside any real data
// extent yet safe under the arithmetic in CellStart.
const (
	unboundedLoCell = int64(-1) << 40
	unboundedHiCell = int64(1) << 40
)

func atCellStart(d Dimension, v storage.Value) bool {
	c := d.CellOf(v)
	return storage.Compare(d.CellStart(c), v) == 0
}

// cellFullyAboveLo reports whether every value of cell c satisfies the low
// bound of r.
func cellFullyAboveLo(d Dimension, c int64, r Range) bool {
	s := d.CellStart(c)
	cmp := storage.Compare(s, r.Lo)
	if cmp > 0 {
		return true
	}
	if cmp < 0 {
		return false
	}
	// s == lo: cell values start exactly at lo.
	if !r.LoOpen {
		return true
	}
	// lo is excluded. For discrete kinds the cell still contains lo itself.
	return false
}

// cellFullyBelowHi reports whether every value of cell c satisfies the high
// bound of r. Cell values live in [start, nextStart).
func cellFullyBelowHi(d Dimension, c int64, r Range) bool {
	e := d.CellStart(c + 1)
	cmp := storage.Compare(e, r.Hi)
	if cmp < 0 {
		return true
	}
	if cmp > 0 {
		return false
	}
	// e == hi: cell values are all < hi, which satisfies both < and <=.
	return true
}

// HasInner reports whether the inner region is non-empty.
func (d Decomposition) HasInner() bool {
	for _, c := range d.Inner {
		if c.Empty() {
			return false
		}
	}
	return len(d.Inner) > 0
}

// IsInner reports whether the cell at coords lies in the inner region.
func (d Decomposition) IsInner(coords []int64) bool {
	if !d.HasInner() {
		return false
	}
	for i, c := range coords {
		if c < d.Inner[i].Lo || c > d.Inner[i].Hi {
			return false
		}
	}
	return true
}

// CountRead returns the number of cells in the read region.
func (d Decomposition) CountRead() int64 { return countCells(d.Read) }

// CountInner returns the number of cells in the inner region.
func (d Decomposition) CountInner() int64 {
	if !d.HasInner() {
		return 0
	}
	return countCells(d.Inner)
}

func countCells(ranges []CellRange) int64 {
	if len(ranges) == 0 {
		return 0
	}
	n := int64(1)
	for _, c := range ranges {
		cnt := c.Count()
		if cnt == 0 {
			return 0
		}
		n *= cnt
	}
	return n
}

// EachReadCell enumerates every cell of the read region in odometer order,
// invoking fn with coordinates that fn must not retain.
func (d Decomposition) EachReadCell(fn func(coords []int64)) {
	eachCell(d.Read, fn)
}

// EachInnerCell enumerates the inner region.
func (d Decomposition) EachInnerCell(fn func(coords []int64)) {
	if !d.HasInner() {
		return
	}
	eachCell(d.Inner, fn)
}

// EachBoundaryCell enumerates read-region cells outside the inner region
// (the boundary region R−I of the paper).
func (d Decomposition) EachBoundaryCell(fn func(coords []int64)) {
	eachCell(d.Read, func(coords []int64) {
		if !d.IsInner(coords) {
			fn(coords)
		}
	})
}

func eachCell(ranges []CellRange, fn func(coords []int64)) {
	for _, c := range ranges {
		if c.Empty() {
			return
		}
	}
	if len(ranges) == 0 {
		return
	}
	coords := make([]int64, len(ranges))
	for i, c := range ranges {
		coords[i] = c.Lo
	}
	for {
		fn(coords)
		i := len(ranges) - 1
		for i >= 0 {
			coords[i]++
			if coords[i] <= ranges[i].Hi {
				break
			}
			coords[i] = ranges[i].Lo
			i--
		}
		if i < 0 {
			return
		}
	}
}

// ClampRead intersects the read (and inner) regions with per-dimension data
// bounds, so that queries over sparse grids do not enumerate cells no record
// can occupy. The planner passes the per-dimension min/max standardised
// values that DGFIndex records at construction time.
func (d *Decomposition) ClampRead(lo, hi []int64) {
	for i := range d.Read {
		d.Read[i] = d.Read[i].Clamp(lo[i], hi[i])
		d.Inner[i] = d.Inner[i].Clamp(lo[i], hi[i])
	}
}

// TimeUnit is a convenience constructor for day-granularity time dimensions.
func TimeUnit(days int64) int64 { return days * 24 * 3600 }

// DayInterval builds a Time dimension starting at min with an interval of n
// days.
func DayInterval(name string, min time.Time, n int64) Dimension {
	return Dimension{
		Name:      name,
		Kind:      storage.KindTime,
		Min:       storage.Time(min),
		IntervalI: TimeUnit(n),
	}
}
