package gridfile

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// paperPolicy reproduces the example of the paper's Figures 5-7:
// dimension A divided with min 1 interval 3, dimension B min 11 interval 2.
func paperPolicy() *Policy {
	return &Policy{Dims: []Dimension{
		{Name: "A", Kind: storage.KindInt64, Min: storage.Int64(1), IntervalI: 3},
		{Name: "B", Kind: storage.KindInt64, Min: storage.Int64(11), IntervalI: 2},
	}}
}

func TestCellOfPaperExample(t *testing.T) {
	p := paperPolicy()
	// Record <1,14,0.1> lands in {1<=A<4, 13<=B<15} per Section 4.1.
	cells := p.CellsOf([]storage.Value{storage.Int64(1), storage.Int64(14)})
	if cells[0] != 0 || cells[1] != 1 {
		t.Fatalf("cells = %v, want [0 1]", cells)
	}
	if key := p.Key(cells); key != "1_13" {
		t.Errorf("key = %q, want 1_13 (paper figure 6 first pair)", key)
	}
	// Record <9,14,...> and <8,13,...> share GFU 7_13 (the highlighted one).
	k1 := p.Key(p.CellsOf([]storage.Value{storage.Int64(9), storage.Int64(14)}))
	k2 := p.Key(p.CellsOf([]storage.Value{storage.Int64(8), storage.Int64(13)}))
	if k1 != "7_13" || k2 != "7_13" {
		t.Errorf("keys = %q, %q, want both 7_13", k1, k2)
	}
}

func TestAllPaperFigure6Keys(t *testing.T) {
	p := paperPolicy()
	// Original data of Figure 6 with its expected GFUKeys.
	cases := []struct {
		a, b int64
		key  string
	}{
		{1, 14, "1_13"}, {5, 18, "4_17"}, {7, 12, "7_11"}, {2, 11, "1_11"},
		{9, 14, "7_13"}, {11, 16, "10_15"}, {3, 18, "1_17"}, {12, 12, "10_11"},
		{8, 13, "7_13"},
	}
	for _, c := range cases {
		key := p.Key(p.CellsOf([]storage.Value{storage.Int64(c.a), storage.Int64(c.b)}))
		if key != c.key {
			t.Errorf("record (%d,%d): key %q, want %q", c.a, c.b, key, c.key)
		}
	}
}

func TestDecomposePaperQuery(t *testing.T) {
	p := paperPolicy()
	// Listing 2: WHERE A>=5 AND A<12 AND B>=12 AND B<16.
	dec, err := p.Decompose([]Range{
		{Lo: storage.Int64(5), Hi: storage.Int64(12), HiOpen: true},
		{Lo: storage.Int64(12), Hi: storage.Int64(16), HiOpen: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: read region R = {4<=A<13, 11<=B<17} -> A cells 1..3, B cells 0..2.
	if dec.Read[0] != (CellRange{1, 3}) || dec.Read[1] != (CellRange{0, 2}) {
		t.Errorf("Read = %+v, want A[1,3] B[0,2]", dec.Read)
	}
	// Paper: inner region I = {7<=A<10, 13<=B<15} -> A cell 2, B cell 1.
	if dec.Inner[0] != (CellRange{2, 2}) || dec.Inner[1] != (CellRange{1, 1}) {
		t.Errorf("Inner = %+v, want A[2,2] B[1,1]", dec.Inner)
	}
	if !dec.HasInner() {
		t.Error("HasInner = false")
	}
	if dec.CountRead() != 9 || dec.CountInner() != 1 {
		t.Errorf("counts = %d read, %d inner; want 9, 1", dec.CountRead(), dec.CountInner())
	}
	var boundary []string
	dec.EachBoundaryCell(func(c []int64) { boundary = append(boundary, p.Key(c)) })
	if len(boundary) != 8 {
		t.Errorf("boundary cells = %v, want 8", boundary)
	}
	for _, k := range boundary {
		if k == "7_13" {
			t.Error("inner cell 7_13 appeared in boundary")
		}
	}
}

func TestDecomposePointQuery(t *testing.T) {
	p := paperPolicy()
	dec, err := p.Decompose([]Range{
		{Lo: storage.Int64(8), Hi: storage.Int64(8)},
		{Lo: storage.Int64(13), Hi: storage.Int64(13)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.CountRead() != 1 {
		t.Errorf("point query reads %d cells, want 1", dec.CountRead())
	}
	// A point query has no inner GFU (Section 5.3.2: "In point query case,
	// there is no inner GFU").
	if dec.HasInner() {
		t.Error("point query should have no inner region")
	}
}

func TestDecomposeExactCellAlignment(t *testing.T) {
	p := paperPolicy()
	// Query exactly one whole cell: A in [7,10), B in [13,15).
	dec, err := p.Decompose([]Range{
		{Lo: storage.Int64(7), Hi: storage.Int64(10), HiOpen: true},
		{Lo: storage.Int64(13), Hi: storage.Int64(15), HiOpen: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.CountRead() != 1 || dec.CountInner() != 1 {
		t.Errorf("aligned cell query: read=%d inner=%d, want 1,1", dec.CountRead(), dec.CountInner())
	}
}

func TestDecomposeOpenLowerBound(t *testing.T) {
	p := paperPolicy()
	// A > 9 AND A <= 10: only values 10 qualify -> cell 3 only.
	dec, err := p.Decompose([]Range{
		{Lo: storage.Int64(9), Hi: storage.Int64(10), LoOpen: true},
		{Lo: storage.Int64(11), Hi: storage.Int64(12)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Read[0] != (CellRange{3, 3}) {
		t.Errorf("Read A = %+v, want [3,3]", dec.Read[0])
	}
}

func TestDecomposeEmptyRange(t *testing.T) {
	p := paperPolicy()
	_, err := p.Decompose([]Range{
		{Lo: storage.Int64(9), Hi: storage.Int64(5)},
		{Lo: storage.Int64(11), Hi: storage.Int64(12)},
	})
	if err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := p.Decompose([]Range{{Lo: storage.Int64(1), Hi: storage.Int64(2)}}); err == nil {
		t.Error("wrong range count accepted")
	}
}

func TestFloatDimension(t *testing.T) {
	d := Dimension{Name: "l_discount", Kind: storage.KindFloat64, Min: storage.Float64(0), IntervalF: 0.01}
	// Boundary values standardise into the cell they open.
	for i := 0; i <= 10; i++ {
		v := storage.Float64(float64(i) * 0.01)
		if got := d.CellOf(v); got != int64(i) {
			t.Errorf("CellOf(%.2f) = %d, want %d", v.F, got, i)
		}
	}
	if got := d.CellOf(storage.Float64(0.057)); got != 5 {
		t.Errorf("CellOf(0.057) = %d, want 5", got)
	}
}

func TestTimeDimension(t *testing.T) {
	min := time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC)
	d := DayInterval("ts", min, 1)
	if got := d.CellOf(storage.Time(min.Add(36 * time.Hour))); got != 1 {
		t.Errorf("36h -> cell %d, want 1", got)
	}
	if got := d.CellStart(29); got.String() != "2012-12-30" {
		t.Errorf("CellStart(29) = %s, want 2012-12-30", got)
	}
}

func TestParseDimensionForms(t *testing.T) {
	cases := []struct {
		name string
		kind storage.Kind
		spec string
	}{
		{"A", storage.KindInt64, "1_3"},
		{"discount", storage.KindFloat64, "0_0.01"},
		{"ts", storage.KindTime, "2012-12-01_1d"},
		{"ts2", storage.KindTime, "1992-01-01_100d"},
		{"ts3", storage.KindTime, "2012-12-01_3600"},
	}
	for _, c := range cases {
		d, err := ParseDimension(c.name, c.kind, c.spec)
		if err != nil {
			t.Errorf("ParseDimension(%q): %v", c.spec, err)
			continue
		}
		// Spec round-trips through ParseDimension.
		d2, err := ParseDimension(c.name, c.kind, d.Spec())
		if err != nil {
			t.Errorf("re-parse %q: %v", d.Spec(), err)
			continue
		}
		if d2 != d {
			t.Errorf("spec round trip: %+v != %+v", d2, d)
		}
	}
	for _, bad := range []string{"", "5", "_3", "5_", "a_b"} {
		if _, err := ParseDimension("x", storage.KindInt64, bad); err == nil {
			t.Errorf("ParseDimension(%q) accepted", bad)
		}
	}
	if _, err := ParseDimension("s", storage.KindString, "a_b"); err == nil {
		t.Error("string dimension accepted")
	}
}

func TestKeyParseRoundTrip(t *testing.T) {
	min := time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC)
	p := &Policy{Dims: []Dimension{
		{Name: "u", Kind: storage.KindInt64, Min: storage.Int64(1), IntervalI: 1000},
		{Name: "d", Kind: storage.KindFloat64, Min: storage.Float64(0), IntervalF: 0.01},
		DayInterval("ts", min, 1),
	}}
	cells := []int64{7, 3, 29}
	key := p.Key(cells)
	back, err := p.ParseKey(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if back[i] != cells[i] {
			t.Errorf("cell %d: %d != %d (key %q)", i, back[i], cells[i], key)
		}
	}
	if _, err := p.ParseKey("1"); err == nil {
		t.Error("short key accepted")
	}
}

func TestClampRead(t *testing.T) {
	p := paperPolicy()
	dec, _ := p.Decompose([]Range{
		{Lo: storage.Int64(-100), Hi: storage.Int64(1000)},
		{Lo: storage.Int64(-100), Hi: storage.Int64(1000)},
	})
	if dec.CountRead() < 300 {
		t.Fatalf("unclamped read = %d", dec.CountRead())
	}
	dec.ClampRead([]int64{0, 0}, []int64{3, 2})
	if dec.Read[0] != (CellRange{0, 3}) || dec.Read[1] != (CellRange{0, 2}) {
		t.Errorf("clamped = %+v", dec.Read)
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{Lo: storage.Int64(5), Hi: storage.Int64(10), LoOpen: true, HiOpen: false}
	cases := map[int64]bool{4: false, 5: false, 6: true, 10: true, 11: false}
	for v, want := range cases {
		if got := r.Contains(storage.Int64(v)); got != want {
			t.Errorf("Contains(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	p := paperPolicy()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	dup := &Policy{Dims: []Dimension{p.Dims[0], p.Dims[0]}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate dimension accepted")
	}
	empty := &Policy{}
	if err := empty.Validate(); err == nil {
		t.Error("empty policy accepted")
	}
	bad := &Policy{Dims: []Dimension{{Name: "x", Kind: storage.KindInt64, IntervalI: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero interval accepted")
	}
}

// Property: CellOf(CellStart(i)) == i for every dimension kind.
func TestCellStartRoundTripProperty(t *testing.T) {
	f := func(idxRaw int32, intervalRaw uint8, minRaw int16) bool {
		idx := int64(idxRaw % 100000)
		interval := int64(intervalRaw%50) + 1
		dims := []Dimension{
			{Name: "i", Kind: storage.KindInt64, Min: storage.Int64(int64(minRaw)), IntervalI: interval},
			{Name: "t", Kind: storage.KindTime, Min: storage.TimeUnix(int64(minRaw) * 3600), IntervalI: interval * 3600},
			{Name: "f", Kind: storage.KindFloat64, Min: storage.Float64(float64(minRaw) / 7), IntervalF: float64(interval) / 16},
		}
		for _, d := range dims {
			if d.CellOf(d.CellStart(idx)) != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every value satisfying the ranges falls in a read cell, and
// every value in an inner cell satisfies the ranges.
func TestDecomposeSoundnessProperty(t *testing.T) {
	f := func(loRaw, widthRaw uint8, vRaw int16, loOpen, hiOpen bool) bool {
		d := Dimension{Name: "x", Kind: storage.KindInt64, Min: storage.Int64(0), IntervalI: 7}
		p := &Policy{Dims: []Dimension{d}}
		lo := int64(loRaw)
		hi := lo + int64(widthRaw) + 1
		r := Range{Lo: storage.Int64(lo), Hi: storage.Int64(hi), LoOpen: loOpen, HiOpen: hiOpen}
		dec, err := p.Decompose([]Range{r})
		if err != nil {
			return false
		}
		v := storage.Int64(int64(vRaw))
		cell := d.CellOf(v)
		inRead := cell >= dec.Read[0].Lo && cell <= dec.Read[0].Hi
		if r.Contains(v) && !inRead {
			return false // qualifying value outside read region: unsound
		}
		inInner := dec.HasInner() && cell >= dec.Inner[0].Lo && cell <= dec.Inner[0].Hi
		if inInner && !r.Contains(v) {
			// Only unsound if the value really lies in that cell's span;
			// any v with this cell index does, by definition of CellOf.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: boundary + inner == read, disjointly.
func TestDecomposePartitionProperty(t *testing.T) {
	f := func(lo1, w1, lo2, w2 uint8) bool {
		p := paperPolicy()
		r1 := Range{Lo: storage.Int64(int64(lo1)), Hi: storage.Int64(int64(lo1) + int64(w1) + 1), HiOpen: true}
		r2 := Range{Lo: storage.Int64(int64(lo2) + 11), Hi: storage.Int64(int64(lo2) + 11 + int64(w2) + 1), HiOpen: true}
		dec, err := p.Decompose([]Range{r1, r2})
		if err != nil {
			return false
		}
		seen := map[string]int{}
		dec.EachReadCell(func(c []int64) { seen[fmt.Sprint(c)] |= 1 })
		dec.EachInnerCell(func(c []int64) { seen[fmt.Sprint(c)] |= 2 })
		dec.EachBoundaryCell(func(c []int64) { seen[fmt.Sprint(c)] |= 4 })
		var inner, boundary, read int64
		for _, bits := range seen {
			if bits&1 == 0 {
				return false // inner or boundary cell outside read
			}
			read++
			switch bits {
			case 1 | 2:
				inner++
			case 1 | 4:
				boundary++
			case 1:
				return false // read cell neither inner nor boundary
			default:
				return false // cell both inner and boundary
			}
		}
		return read == dec.CountRead() && inner == dec.CountInner()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
