// BenchmarkIngestThroughput measures what the write-ahead log buys a
// streaming ingest workload: the same stream of micro-batches is pushed
// into two identical 4-shard, 2-replica indexed fleets — one applying every
// load synchronously to both replicas before acknowledging, one acking at
// log-durability speed (interval fsync) with background appliers draining
// the log. The WAL fleet is then drained and both fleets must agree on
// count(*): the speedup is pure ack latency, not dropped work. Results are
// written machine-readably to BENCH_ingest.json at the repository root.
package dgfindex_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	dgfindex "github.com/smartgrid-oss/dgfindex"
)

// ingestBenchBatches builds the streamed micro-batches: each batch is one
// collection interval of readings across all users, so every batch routes
// rows to every shard and appends to the tail of the index's ts dimension.
func ingestBenchBatches(users, batches int) [][]dgfindex.Row {
	base := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	out := make([][]dgfindex.Row, batches)
	for bi := range out {
		rows := make([]dgfindex.Row, users)
		for u := 0; u < users; u++ {
			rows[u] = dgfindex.Row{
				dgfindex.Int64(int64(u + 1)),
				dgfindex.Int64(int64(u%4 + 1)),
				dgfindex.Time(base.Add(time.Duration(bi) * 15 * time.Minute)),
				dgfindex.Float64(float64((bi*31+u*7)%400) * 0.25),
			}
		}
		out[bi] = rows
	}
	return out
}

func BenchmarkIngestThroughput(b *testing.B) {
	const (
		shards   = 4
		replicas = 2
		users    = 300
		batches  = 40
	)
	mkFleet := func() *dgfindex.ShardRouter {
		r, err := dgfindex.NewSharded(dgfindex.ShardConfig{Shards: shards, Replicas: replicas, Key: "userId"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`); err != nil {
			b.Fatal(err)
		}
		cfg := dgfindex.DefaultMeterConfig()
		cfg.Users = users
		cfg.OtherMetrics = 0
		if err := r.LoadRowsByName("meterdata", cfg.AllRows()); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Exec(fmt.Sprintf(`CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
			AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_%d',
			'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed);count(*)')`, users/50)); err != nil {
			b.Fatal(err)
		}
		return r
	}
	count := func(r *dgfindex.ShardRouter) int64 {
		b.Helper()
		res, err := r.Exec(`SELECT count(*) FROM meterdata`)
		if err != nil {
			b.Fatal(err)
		}
		return int64(res.Rows[0][0].AsFloat())
	}
	stream := ingestBenchBatches(users, batches)
	warm := ingestBenchBatches(users, 1) // distinct warm-up interval
	ctx := context.Background()

	// Path 1: synchronous replicated loads — each ack waits for both
	// replicas of every touched shard to apply rows and maintain the index.
	syncFleet := mkFleet()
	if err := syncFleet.LoadRowsByName("meterdata", warm[0]); err != nil {
		b.Fatal(err)
	}
	t0 := time.Now()
	for _, batch := range stream {
		if err := syncFleet.LoadRowsByName("meterdata", batch); err != nil {
			b.Fatal(err)
		}
	}
	syncWall := time.Since(t0)

	// Path 2: WAL-acked loads — each ack waits only for the checksummed
	// records to reach every replica's log (interval fsync); appliers drain
	// in the background.
	walFleet := mkFleet()
	if err := walFleet.EnableWAL(dgfindex.WALConfig{Dir: b.TempDir(), Fsync: dgfindex.FsyncInterval}); err != nil {
		b.Fatal(err)
	}
	defer walFleet.CloseWAL()
	if _, err := walFleet.LoadRowsDurable(ctx, "meterdata", warm[0], true); err != nil {
		b.Fatal(err)
	}
	t1 := time.Now()
	for _, batch := range stream {
		if _, err := walFleet.LoadRowsDurable(ctx, "meterdata", batch, false); err != nil {
			b.Fatal(err)
		}
	}
	ackWall := time.Since(t1)
	drainCtx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	if err := walFleet.DrainWAL(drainCtx); err != nil {
		b.Fatal(err)
	}
	drainWall := time.Since(t1)

	// Every acknowledged row must be queryable on both fleets before the
	// ack-latency comparison means anything.
	if sc, wc := count(syncFleet), count(walFleet); sc != wc {
		b.Fatalf("fleets disagree after drain: sync %d rows, wal %d rows", sc, wc)
	}

	speedup := float64(syncWall) / float64(ackWall)
	if speedup < 2 {
		b.Fatalf("WAL ack speedup %.2fx, want >= 2x (sync %v/batch, ack %v/batch)",
			speedup, syncWall/batches, ackWall/batches)
	}
	rowsStreamed := int64(users * batches)
	out := struct {
		Benchmark      string  `json:"benchmark"`
		Shards         int     `json:"shards"`
		Replicas       int     `json:"replicas"`
		Batches        int     `json:"batches"`
		RowsPerBatch   int     `json:"rows_per_batch"`
		SyncNsPerBatch int64   `json:"sync_ns_per_batch"`
		AckNsPerBatch  int64   `json:"wal_ack_ns_per_batch"`
		AckRowsPerSec  float64 `json:"wal_ack_rows_per_sec"`
		SyncRowsPerSec float64 `json:"sync_rows_per_sec"`
		DrainLagMs     float64 `json:"wal_drain_lag_ms"`
		Speedup        float64 `json:"speedup"`
	}{
		Benchmark:      "BenchmarkIngestThroughput",
		Shards:         shards,
		Replicas:       replicas,
		Batches:        batches,
		RowsPerBatch:   users,
		SyncNsPerBatch: syncWall.Nanoseconds() / batches,
		AckNsPerBatch:  ackWall.Nanoseconds() / batches,
		AckRowsPerSec:  float64(rowsStreamed) / ackWall.Seconds(),
		SyncRowsPerSec: float64(rowsStreamed) / syncWall.Seconds(),
		DrainLagMs:     float64(drainWall-ackWall) / float64(time.Millisecond),
		Speedup:        speedup,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_ingest.json", append(data, '\n'), 0644); err != nil {
		b.Fatal(err)
	}

	extra := ingestBenchBatches(users, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := walFleet.LoadRowsDurable(ctx, "meterdata", extra[i], false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(speedup, "ack-speedup-vs-sync")
	b.ReportMetric(float64(rowsStreamed)/ackWall.Seconds(), "acked-rows/s")
}
