package dgfindex_test

import (
	"math"
	"testing"
	"time"

	dgfindex "github.com/smartgrid-oss/dgfindex"
)

// TestPublicAPIEndToEnd exercises the README quick-start path through the
// re-exported API only.
func TestPublicAPIEndToEnd(t *testing.T) {
	w := dgfindex.New()
	if _, err := w.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`); err != nil {
		t.Fatal(err)
	}
	tbl, err := w.Table("meterdata")
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC)
	var rows []dgfindex.Row
	var want float64
	for day := 0; day < 10; day++ {
		for u := int64(1); u <= 200; u++ {
			p := float64(u%7) + float64(day)
			rows = append(rows, dgfindex.Row{
				dgfindex.Int64(u),
				dgfindex.Int64(u%5 + 1),
				dgfindex.Time(base.AddDate(0, 0, day)),
				dgfindex.Float64(p),
			})
			if u >= 20 && u <= 120 && u%5+1 == 2 && day >= 2 && day < 6 {
				want += p
			}
		}
	}
	if err := w.LoadRows(tbl, rows); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec(`CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
		AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_20',
		'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed);count(*)')`); err != nil {
		t.Fatal(err)
	}
	res, err := w.Exec(`SELECT sum(powerConsumed) FROM meterdata
		WHERE userId>=20 AND userId<=120 AND regionId=2
		AND ts>='2012-12-03' AND ts<'2012-12-07'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].F; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if res.Stats.AccessPath != "dgfindex(precompute)" {
		t.Errorf("access path = %s", res.Stats.AccessPath)
	}
	if res.Stats.SimTotalSec() <= 0 {
		t.Error("missing simulated cost")
	}
}

func TestWorkloadReexports(t *testing.T) {
	mc := dgfindex.DefaultMeterConfig()
	mc.Users, mc.Days = 50, 3
	if got := mc.Rows(); got != 150 {
		t.Errorf("Rows = %d", got)
	}
	if dgfindex.MeterSchema(2).Len() != 6 {
		t.Error("meter schema width wrong")
	}
	tc := dgfindex.DefaultTPCHConfig()
	if tc.Rows <= 0 {
		t.Error("tpch config empty")
	}
	if dgfindex.LineitemSchema().ColIndex("l_discount") < 0 {
		t.Error("lineitem schema missing l_discount")
	}
}

func TestNewWithConfig(t *testing.T) {
	cfg := dgfindex.DefaultCluster()
	cfg.Workers = 2
	w := dgfindex.NewWithConfig(cfg, 1<<16)
	if _, err := w.Exec(`CREATE TABLE t (x bigint)`); err != nil {
		t.Fatal(err)
	}
	res, err := w.Exec(`SHOW TABLES`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("SHOW TABLES: %v %v", res, err)
	}
}
