package dgfindex_test

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	dgfindex "github.com/smartgrid-oss/dgfindex"
)

// TestFullLifecycle drives the complete life of a DGFIndex-backed table
// through the public API only: create, bulk load, advise a policy from a
// query history, build the index with the advised policy, query every
// family (aggregation, group-by, join, partial), append a new collection
// period, register an extra pre-computed aggregation, and re-validate
// everything against a plain-scan warehouse at each step.
func TestFullLifecycle(t *testing.T) {
	const (
		users = 1500
		days  = 12
	)
	cfg := dgfindex.DefaultMeterConfig()
	cfg.Users = users
	cfg.Days = days
	cfg.OtherMetrics = 2
	ddl := `CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp,
		powerConsumed double, pate1 double, pate2 double)`
	userDDL := `CREATE TABLE userInfo (userId bigint, userName string, regionId bigint, address string)`

	newWarehouse := func() *dgfindex.Warehouse {
		w := dgfindex.New()
		if _, err := w.Exec(ddl); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Exec(userDDL); err != nil {
			t.Fatal(err)
		}
		mt, _ := w.Table("meterdata")
		if err := w.LoadRows(mt, cfg.AllRows()); err != nil {
			t.Fatal(err)
		}
		ut, _ := w.Table("userInfo")
		if err := w.LoadRows(ut, cfg.UserInfoRows()); err != nil {
			t.Fatal(err)
		}
		return w
	}
	indexed := newWarehouse()
	plain := newWarehouse()

	// Phase 1: advise a splitting policy from the data and the intended
	// workload's query history.
	mt, _ := indexed.Table("meterdata")
	q5 := cfg.Selective(0.05)
	q12 := cfg.Selective(0.12)
	history := []map[string]dgfindex.GridRange{q5.Ranges(), q12.Ranges(), cfg.Point().Ranges()}
	// The default 32-rows-per-GFU floor would coarsen the grid past the
	// query extents at this toy scale; lower it so the advised policy keeps
	// an inner region for the 5% query.
	advice, err := dgfindex.SuggestPolicy(mt.Schema, []string{"regionId", "userId", "ts"},
		cfg.AllRows()[:10000], history,
		dgfindex.AdvisorConfig{TotalRows: int64(cfg.Rows()), MinRowsPerCell: 4})
	if err != nil {
		t.Fatal(err)
	}
	create := fmt.Sprintf(`CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
		AS 'dgf' IDXPROPERTIES (%s, 'precompute'='sum(powerConsumed);count(*)')`,
		advice.String())
	if _, err := indexed.Exec(create); err != nil {
		t.Fatalf("CREATE INDEX with advised policy %q: %v", advice.String(), err)
	}

	// Phase 2: the four query families agree with the plain warehouse.
	queries := []string{
		"SELECT sum(powerConsumed), count(*) FROM meterdata WHERE " + q5.WhereClause(),
		"SELECT avg(powerConsumed), max(powerConsumed) FROM meterdata WHERE " + q12.WhereClause(),
		"SELECT ts, sum(powerConsumed) FROM meterdata WHERE " + q5.WhereClause() + " GROUP BY ts",
		`SELECT t2.userName, t1.powerConsumed FROM meterdata t1 JOIN userInfo t2
		 ON t1.userId=t2.userId WHERE t1.userId>=40 AND t1.userId<=60
		 AND t1.ts>='2012-12-03' AND t1.ts<'2012-12-05'`,
		`SELECT SUM(powerConsumed) FROM meterdata WHERE regionId=4 AND ts>='2012-12-06' AND ts<'2012-12-07'`,
	}
	// Rows are compared as sorted multisets: the DGFIndex build reorganises
	// the physical layout, so unordered projections legitimately arrive in
	// a different order.
	renderSorted := func(rows []dgfindex.Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			var cells []string
			for _, v := range r {
				if v.Kind == dgfindex.KindFloat64 {
					cells = append(cells, fmt.Sprintf("%.6f", v.F))
				} else {
					cells = append(cells, v.String())
				}
			}
			out[i] = strings.Join(cells, "|")
		}
		sort.Strings(out)
		return out
	}
	compare := func(phase string) {
		t.Helper()
		for _, sql := range queries {
			a, err := indexed.Exec(sql)
			if err != nil {
				t.Fatalf("%s: indexed %q: %v", phase, sql, err)
			}
			b, err := plain.Exec(sql)
			if err != nil {
				t.Fatalf("%s: plain %q: %v", phase, sql, err)
			}
			as, bs := renderSorted(a.Rows), renderSorted(b.Rows)
			if len(as) != len(bs) {
				t.Fatalf("%s: %q row counts differ: %d vs %d", phase, sql, len(as), len(bs))
			}
			for i := range as {
				if as[i] != bs[i] {
					t.Fatalf("%s: %q row %d: %q vs %q", phase, sql, i, as[i], bs[i])
				}
			}
		}
	}
	compare("initial")

	// Phase 3: a new collection day arrives in both warehouses.
	dayCfg := cfg
	dayCfg.Days = 1
	dayCfg.Start = cfg.Start.AddDate(0, 0, days)
	dayCfg.Seed = cfg.Seed + 1
	newRows := dayCfg.AllRows()
	for _, w := range []*dgfindex.Warehouse{indexed, plain} {
		tb, _ := w.Table("meterdata")
		if err := w.LoadRows(tb, newRows); err != nil {
			t.Fatal(err)
		}
	}
	queries = append(queries, fmt.Sprintf(
		`SELECT count(*) FROM meterdata WHERE ts>='%s' AND ts<'%s'`,
		dayCfg.Start.Format("2006-01-02"), dayCfg.Start.AddDate(0, 0, 1).Format("2006-01-02")))
	compare("after append")

	// Phase 4: register a new pre-computed aggregation on the live index
	// and verify the planner can now answer min() from headers.
	tb, _ := indexed.Table("meterdata")
	if _, err := tb.Dgf.AddPrecompute(indexed.Cluster, []dgfindex.DGFAggSpec{{Func: dgfindex.AggMin, Col: "powerconsumed"}}); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT min(powerConsumed) FROM meterdata WHERE " + q5.WhereClause()
	a, err := indexed.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.AccessPath != "dgfindex(precompute)" {
		t.Errorf("min() after AddPrecompute uses %s", a.Stats.AccessPath)
	}
	b, _ := plain.Exec(sql)
	if math.Abs(a.Rows[0][0].F-b.Rows[0][0].F) > 1e-9 {
		t.Errorf("min = %v, want %v", a.Rows[0][0].F, b.Rows[0][0].F)
	}

	// Phase 5: simulated economics stay sane — the indexed aggregation is
	// far cheaper than the plain scan.
	res, _ := indexed.Exec(queries[0])
	scan, _ := plain.Exec(queries[0])
	if res.Stats.SimTotalSec() >= scan.Stats.SimTotalSec() {
		t.Errorf("indexed query %v s not below scan %v s",
			res.Stats.SimTotalSec(), scan.Stats.SimTotalSec())
	}
}
