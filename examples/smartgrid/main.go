// Command smartgrid replays the Zhejiang-grid scenario that motivates the
// paper: a month of smart-meter readings, a DGFIndex over (regionId, userId,
// collection time) with pre-computed sum/count, and the four query families
// of Section 5.3 — aggregation (Listing 4), group-by (Listing 5), join with
// the archive table (Listing 6) and a partially specified query (Listing 7).
package main

import (
	"flag"
	"fmt"
	"log"

	dgfindex "github.com/smartgrid-oss/dgfindex"
)

func main() {
	users := flag.Int("users", 5000, "number of smart meters")
	days := flag.Int("days", 30, "collection days")
	flag.Parse()

	// Treat the generated sample as a slice of the paper's 1 TB deployment:
	// simulated times then land in the paper's range instead of being
	// dominated by fixed job overhead.
	w := dgfindex.NewWithConfig(dgfindex.DefaultCluster().Scaled(500000), 2<<20)
	cfg := dgfindex.DefaultMeterConfig()
	cfg.Users = *users
	cfg.Days = *days
	cfg.OtherMetrics = 2

	fmt.Printf("generating %d meter readings (%d users x %d days)...\n", cfg.Rows(), cfg.Users, cfg.Days)
	must(w.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp,
		powerConsumed double, pate1 double, pate2 double)`))
	meter, _ := w.Table("meterdata")
	if err := w.LoadRows(meter, cfg.AllRows()); err != nil {
		log.Fatal(err)
	}
	must(w.Exec(`CREATE TABLE userInfo (userId bigint, userName string, regionId bigint, address string)`))
	userInfo, _ := w.Table("userInfo")
	if err := w.LoadRows(userInfo, cfg.UserInfoRows()); err != nil {
		log.Fatal(err)
	}

	interval := cfg.Users / 100
	if interval < 1 {
		interval = 1
	}
	res := must(w.Exec(fmt.Sprintf(`CREATE INDEX idx_meter ON TABLE meterdata(regionId, userId, ts)
		AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_%d',
		'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed);count(*)')`, interval)))
	fmt.Println(res.Message)

	queries := []struct{ title, sql string }{
		{"Listing 4 — aggregation MDRQ (uses pre-computed headers)",
			`SELECT sum(powerConsumed), count(*) FROM meterdata
			 WHERE regionId>=3 AND regionId<=7 AND userId>=500 AND userId<=2500
			 AND ts>='2012-12-05' AND ts<'2012-12-20'`},
		{"ad hoc — average consumption for a user range and date range",
			`SELECT avg(powerConsumed) FROM meterdata
			 WHERE userId>=100 AND userId<=1000 AND ts>='2012-12-01' AND ts<'2012-12-15'`},
		{"Listing 5 — daily totals (group-by; slice skipping, no headers)",
			`SELECT ts, sum(powerConsumed) FROM meterdata
			 WHERE regionId>=3 AND regionId<=7 AND userId>=500 AND userId<=2500
			 AND ts>='2012-12-05' AND ts<'2012-12-12' GROUP BY ts`},
		{"Listing 6 — join with the archive table",
			`INSERT OVERWRITE DIRECTORY '/tmp/result'
			 SELECT t2.userName, t1.powerConsumed FROM meterdata t1 JOIN userInfo t2
			 ON t1.userId=t2.userId
			 WHERE t1.regionId>=3 AND t1.regionId<=4 AND t1.userId>=500 AND t1.userId<=600
			 AND t1.ts>='2012-12-05' AND t1.ts<'2012-12-07'`},
		{"Listing 7 — partially specified query (userId unconstrained)",
			fmt.Sprintf(`SELECT SUM(powerConsumed) FROM meterdata WHERE regionId=11 AND ts>='%s' AND ts<'%s'`,
				cfg.Start.AddDate(0, 0, cfg.Days-1).Format("2006-01-02"),
				cfg.Start.AddDate(0, 0, cfg.Days).Format("2006-01-02"))},
	}
	for _, q := range queries {
		fmt.Printf("\n--- %s ---\n", q.title)
		res := must(w.Exec(q.sql))
		for i, row := range res.Rows {
			if i == 5 {
				fmt.Printf("  ... (%d more rows)\n", len(res.Rows)-5)
				break
			}
			fmt.Print("  ")
			for j, v := range row {
				if j > 0 {
					fmt.Print(" | ")
				}
				fmt.Print(v.String())
			}
			fmt.Println()
		}
		st := res.Stats
		fmt.Printf("  [%s] sim %.1fs (index+other %.1fs, data %.1fs); %d records, %d splits, %d seeks\n",
			st.AccessPath, st.SimTotalSec(), st.IndexSimSec, st.DataSimSec,
			st.RecordsRead, st.Splits, st.Seeks)
	}
}

func must(res *dgfindex.Result, err error) *dgfindex.Result {
	if err != nil {
		log.Fatal(err)
	}
	return res
}
