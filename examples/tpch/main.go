// Command tpch reproduces the paper's Section 5.4 TPC-H experiment in
// miniature: lineitem rows uniformly scattered across data files, a
// DGFIndex with the paper's splitting policy (discount 0.01, quantity 1.0,
// shipdate 100 days), and Q6 run three ways — full scan, DGFIndex with
// slice skipping only, and DGFIndex with the pre-computed
// sum(l_extendedprice*l_discount) headers.
package main

import (
	"flag"
	"fmt"
	"log"

	dgfindex "github.com/smartgrid-oss/dgfindex"
)

const q6 = `SELECT sum(l_extendedprice*l_discount) FROM lineitem
WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
AND l_discount >= 0.05 AND l_discount <= 0.07
AND l_quantity < 24`

func main() {
	rows := flag.Int("rows", 200000, "lineitem rows to generate")
	flag.Parse()

	// Scale simulated costs to the paper's 518 GB lineitem table so the
	// scan-vs-index gap shows at its real proportions.
	w := dgfindex.NewWithConfig(dgfindex.DefaultCluster().Scaled(80000), 2<<20)
	must(w.Exec(`CREATE TABLE lineitem (l_orderkey bigint, l_partkey bigint,
		l_suppkey bigint, l_linenumber bigint, l_quantity double,
		l_extendedprice double, l_discount double, l_tax double,
		l_shipdate timestamp, l_commitdate timestamp)`))
	tbl, _ := w.Table("lineitem")
	cfg := dgfindex.TPCHConfig{Rows: *rows, Seed: 19920101}
	fmt.Printf("generating %d lineitem rows (uniformly scattered)...\n", cfg.Rows)
	if err := w.LoadRows(tbl, cfg.AllLineitemRows()); err != nil {
		log.Fatal(err)
	}

	// Q6 against the raw table.
	scan := must(w.Exec(q6))
	fmt.Printf("\nfull scan:          revenue=%.2f  sim=%.0fs  records=%d\n",
		scan.Rows[0][0].F, scan.Stats.SimTotalSec(), scan.Stats.RecordsRead)

	// Build the paper's DGFIndex (Section 5.4 splitting policy) with the
	// Q6 product pre-computed per GFU.
	res := must(w.Exec(`CREATE INDEX idx_q6 ON TABLE lineitem(l_discount, l_quantity, l_shipdate)
		AS 'dgf' IDXPROPERTIES ('l_discount'='0_0.01', 'l_quantity'='0_1',
		'l_shipdate'='1992-01-01_100d',
		'precompute'='sum(l_extendedprice*l_discount);count(*)')`))
	fmt.Println(res.Message)

	// Q6 with slice skipping only (how the paper ran it: Table 6 reads all
	// query-related GFUs).
	noPre, err := w.ExecOpts(q6, dgfindex.ExecOptions{Dgf: dgfindex.DGFPlanOptions{DisablePrecompute: true}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dgf, slice skip:    revenue=%.2f  sim=%.0fs  records=%d\n",
		noPre.Rows[0][0].F, noPre.Stats.SimTotalSec(), noPre.Stats.RecordsRead)

	// Q6 with the pre-computed product headers: the inner region costs no
	// I/O at all.
	pre := must(w.Exec(q6))
	fmt.Printf("dgf, precompute:    revenue=%.2f  sim=%.0fs  records=%d  (%s)\n",
		pre.Rows[0][0].F, pre.Stats.SimTotalSec(), pre.Stats.RecordsRead, pre.Stats.AccessPath)

	if diff := scan.Rows[0][0].F - pre.Rows[0][0].F; diff > 1e-6 || diff < -1e-6 {
		log.Fatalf("answers diverge: %v vs %v", scan.Rows[0][0].F, pre.Rows[0][0].F)
	}
	fmt.Println("\nall three strategies agree on the Q6 revenue.")
}

func must(res *dgfindex.Result, err error) *dgfindex.Result {
	if err != nil {
		log.Fatal(err)
	}
	return res
}
