// Command quickstart is the smallest end-to-end DGFIndex walk-through: it
// creates a table, loads the worked example of the paper's Figures 5-7
// (dimensions A and B with splitting policy A=1_3, B=11_2), builds the
// index, and runs the multidimensional range query of Listing 2.
package main

import (
	"fmt"
	"log"

	dgfindex "github.com/smartgrid-oss/dgfindex"
)

func main() {
	w := dgfindex.New()

	must(w.Exec(`CREATE TABLE example (A bigint, B bigint, C double)`))

	// The nine records of the paper's Figure 6.
	tbl, err := w.Table("example")
	if err != nil {
		log.Fatal(err)
	}
	data := [][3]float64{
		{1, 14, 0.1}, {5, 18, 0.5}, {7, 12, 1.2}, {2, 11, 0.5}, {9, 14, 0.8},
		{11, 16, 1.3}, {3, 18, 0.9}, {12, 12, 0.3}, {8, 13, 0.2},
	}
	rows := make([]dgfindex.Row, len(data))
	for i, d := range data {
		rows[i] = dgfindex.Row{
			dgfindex.Int64(int64(d[0])),
			dgfindex.Int64(int64(d[1])),
			dgfindex.Float64(d[2]),
		}
	}
	if err := w.LoadRows(tbl, rows); err != nil {
		log.Fatal(err)
	}

	// Listing 3: the index DDL with the splitting policy and the
	// pre-computed aggregation.
	res := must(w.Exec(`CREATE INDEX idx_a_b ON TABLE example(A, B)
		AS 'org.apache.hadoop.hive.ql.index.dgf.DgfIndexHandler'
		IDXPROPERTIES ('A'='1_3', 'B'='11_2', 'precompute'='sum(C)')`))
	fmt.Println(res.Message)

	// Listing 2: the multidimensional range aggregation. The inner GFU
	// (7_13) is answered from its pre-computed header; only the boundary
	// region is scanned.
	res = must(w.Exec(`SELECT SUM(C) FROM example
		WHERE A>=5 AND A<12 AND B>=12 AND B<16`))
	fmt.Printf("sum(C) over {5<=A<12, 12<=B<16} = %v  (expected 2.2)\n", res.Rows[0][0].F)
	fmt.Printf("access path: %s\n", res.Stats.AccessPath)
	fmt.Printf("records scanned: %d (boundary only; the inner GFU came from its header)\n",
		res.Stats.RecordsRead)
	fmt.Printf("simulated cluster time: %.2fs index+overhead, %.2fs data\n",
		res.Stats.IndexSimSec, res.Stats.DataSimSec)
}

func must(res *dgfindex.Result, err error) *dgfindex.Result {
	if err != nil {
		log.Fatal(err)
	}
	return res
}
