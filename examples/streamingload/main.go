// Command streamingload demonstrates the property Section 4.2 of the paper
// highlights: because the collection timestamp is a default index dimension,
// newly collected meter data only EXTENDS the grid — the index is never
// rebuilt, so write throughput is unaffected by its existence.
//
// The program loads a base week of readings, builds the DGFIndex, then
// appends day after day through the warehouse (which routes loads through
// the index's append pipeline), querying across old and new days as it goes.
package main

import (
	"fmt"
	"log"
	"time"

	dgfindex "github.com/smartgrid-oss/dgfindex"
)

func main() {
	w := dgfindex.New()
	must(w.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp,
		powerConsumed double, pate1 double, pate2 double)`))
	tbl, _ := w.Table("meterdata")

	cfg := dgfindex.DefaultMeterConfig()
	cfg.Users = 2000
	cfg.OtherMetrics = 2

	// Base load: the first 7 days.
	base := cfg
	base.Days = 7
	fmt.Printf("loading base week: %d readings\n", base.Rows())
	if err := w.LoadRows(tbl, base.AllRows()); err != nil {
		log.Fatal(err)
	}
	res := must(w.Exec(`CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
		AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_50',
		'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed);count(*)')`))
	fmt.Println(res.Message)

	countSQL := `SELECT count(*) FROM meterdata`
	fmt.Printf("records indexed: %v\n\n", must(w.Exec(countSQL)).Rows[0][0].AsInt())

	// Streaming phase: each new day arrives, is verified, and is appended.
	// Loading through the warehouse runs the DGFIndex construction job on
	// just the new files; existing GFU pairs are untouched because the new
	// day occupies new time cells.
	for day := 7; day < 14; day++ {
		dayCfg := cfg
		dayCfg.Days = 1
		dayCfg.Start = cfg.Start.AddDate(0, 0, day)
		dayCfg.Seed = cfg.Seed + int64(day)
		rows := dayCfg.AllRows()
		start := time.Now()
		if err := w.LoadRows(tbl, rows); err != nil {
			log.Fatal(err)
		}
		date := dayCfg.Start.Format("2006-01-02")
		fmt.Printf("appended %s: %5d readings in %v (no rebuild)\n",
			date, len(rows), time.Since(start).Round(time.Millisecond))

		// A rolling three-day window query spanning old and new data.
		if day >= 9 {
			from := cfg.Start.AddDate(0, 0, day-2).Format("2006-01-02")
			to := cfg.Start.AddDate(0, 0, day+1).Format("2006-01-02")
			sql := fmt.Sprintf(`SELECT sum(powerConsumed), count(*) FROM meterdata
				WHERE regionId>=2 AND regionId<=5 AND userId>=100 AND userId<=900
				AND ts>='%s' AND ts<'%s'`, from, to)
			r := must(w.Exec(sql))
			fmt.Printf("  window [%s, %s): sum=%.1f over %v readings  [%s, %.1fs sim]\n",
				from, to, r.Rows[0][0].F, r.Rows[0][1].AsInt(),
				r.Stats.AccessPath, r.Stats.SimTotalSec())
		}
	}

	total := must(w.Exec(countSQL)).Rows[0][0].AsInt()
	fmt.Printf("\nfinal record count: %d (base %d + 7 appended days)\n", total, base.Rows())
}

func must(res *dgfindex.Result, err error) *dgfindex.Result {
	if err != nil {
		log.Fatal(err)
	}
	return res
}
