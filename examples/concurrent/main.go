// The concurrent example replays the paper's smart-grid meter workload from
// many parallel clients against DGFServe, the serving layer in front of one
// shared warehouse. It demonstrates what the subsystem adds over the bare
// library:
//
//   - N clients issue multidimensional range queries over HTTP at once,
//     while a background loader appends the next day's readings;
//   - the worker pool bounds parallelism and sheds overload;
//   - repeated queries hit the result cache until a load invalidates it;
//   - per-session and server-wide metrics come back from /stats.
//
// With -pacing > 0 each query holds its worker slot for its simulated
// cluster time, modelling the remote 29-node cluster; the parallel phase
// then overlaps cluster waits and the printed speedup approaches the worker
// count even on a single local core.
//
// With -shards > 1 the same workload runs against a sharded fleet: the
// meter table partitions across N warehouses by userId hash, every SELECT
// scatter-gathers across the shards, and the per-query simulated cluster
// time drops to the slowest shard's share. With -replicas > 1 each shard is
// R identical copies, and the demo kills one replica mid-traffic to show
// reads failing over while every client keeps getting answers.
//
// With -ingest the demo switches to durable streaming ingest: a 4-shard,
// 2-replica fleet with a write-ahead log accepts a stream of POST /load
// batches that ack at log-durability speed, one replica is killed and
// revived mid-stream (hinted handoff, then catch-up by log replay), and at
// the end every replica's applied log position agrees and a count(*)
// confirms no acknowledged row was lost.
//
// Run: go run ./examples/concurrent [-clients 8] [-queries 40] [-users 1000] [-shards 4] [-replicas 2] [-ingest]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	dgfindex "github.com/smartgrid-oss/dgfindex"
)

// backend is a serving Backend that also parses SQL itself; both
// *dgfindex.Warehouse and *dgfindex.ShardRouter qualify.
type backend interface {
	dgfindex.Backend
	Exec(sql string) (*dgfindex.Result, error)
}

func main() {
	clients := flag.Int("clients", 8, "parallel client sessions")
	queries := flag.Int("queries", 40, "queries per client")
	users := flag.Int("users", 1000, "users in the generated dataset")
	shards := flag.Int("shards", 1, "warehouse shards behind the server (1 = unsharded)")
	replicas := flag.Int("replicas", 1, "warehouse replicas per shard (sharded mode)")
	pacing := flag.Duration("pacing", 2*time.Millisecond, "wall time per simulated cluster-second")
	ingest := flag.Bool("ingest", false, "run the durable streaming-ingest demo instead (WAL, kill/revive mid-stream)")
	flag.Parse()

	if *ingest {
		runIngestDemo(*users)
		return
	}

	// --- build the backend: one month of meter data plus a DGFIndex, on
	// one warehouse or routed across a sharded fleet ---
	cfg := dgfindex.DefaultMeterConfig()
	cfg.Users = *users
	cfg.OtherMetrics = 0
	var be backend
	var router *dgfindex.ShardRouter
	if *shards > 1 || *replicas > 1 {
		var err error
		router, err = dgfindex.NewSharded(dgfindex.ShardConfig{Shards: *shards, Replicas: *replicas, Key: "userId"})
		if err != nil {
			log.Fatal(err)
		}
		be = router
	} else {
		be = dgfindex.New()
	}
	must(be.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`))
	if err := be.LoadRowsByName("meterdata", cfg.AllRows()); err != nil {
		log.Fatal(err)
	}
	res := must(be.Exec(fmt.Sprintf(`CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
		AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_%d',
		'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed);count(*)')`, max(*users/50, 1))))
	fmt.Println(res.Message)

	srv := dgfindex.NewServerWithBackend(be, dgfindex.ServerConfig{
		MaxConcurrent: *clients,
		SimPacing:     *pacing,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("DGFServe on %s: %d shard(s) x %d replica(s), %d clients x %d queries, pacing %v per sim-second\n\n",
		ts.URL, *shards, *replicas, *clients, *queries, *pacing)

	// Every client replays the same shuffled mix of point and range
	// queries (the paper's Fig. 8-10 shapes) under its own session.
	queryMix := buildQueryMix(cfg, *queries)

	// --- phase 1: serial baseline (one client) ---
	serialStart := time.Now()
	for i, sql := range queryMix {
		if _, err := httpQuery(ts.URL, sql, "serial", true); err != nil {
			log.Fatalf("serial query %d: %v", i, err)
		}
	}
	serial := time.Since(serialStart)
	fmt.Printf("serial   : %3d queries in %8v (%6.1f q/s)\n",
		len(queryMix), serial.Round(time.Millisecond), rate(len(queryMix), serial))

	// --- phase 2: N parallel clients, loader interleaving. Queries still
	// bypass the result cache, so the printed speedup isolates what the
	// worker pool buys: overlapping the (simulated) cluster waits.
	parallelStart := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			session := fmt.Sprintf("client-%d", c)
			rng := rand.New(rand.NewSource(int64(c)))
			for _, i := range rng.Perm(len(queryMix)) {
				if _, err := httpQuery(ts.URL, queryMix[i], session, true); err != nil {
					log.Printf("%s: %v", session, err)
					return
				}
			}
		}(c)
	}
	// The next collection day arrives while queries are in flight.
	day31 := cfg
	day31.Days = 1
	day31.Start = cfg.Start.AddDate(0, 0, cfg.Days)
	if _, err := srv.LoadRows("meterdata", day31.AllRows()); err != nil {
		log.Fatalf("interleaved load: %v", err)
	}
	// With a replicated fleet, one replica dies under the parallel traffic:
	// every read fails over to its shard sibling and no client notices.
	outage := router != nil && *replicas > 1
	if outage {
		router.Kill(0, 0)
	}
	wg.Wait()
	if outage {
		router.Revive(0, 0)
		fmt.Println("replica outage: shard 0 replica 0 was down mid-phase; reads failed over to its sibling")
	}
	parallel := time.Since(parallelStart)
	total := *clients * len(queryMix)
	fmt.Printf("parallel : %3d queries in %8v (%6.1f q/s) across %d clients\n",
		total, parallel.Round(time.Millisecond), rate(total, parallel), *clients)
	speedup := (float64(total) / parallel.Seconds()) / rate(len(queryMix), serial)
	fmt.Printf("throughput speedup: %.1fx\n\n", speedup)

	// --- phase 3: result cache and load invalidation ---
	probe := queryMix[len(queryMix)-1]
	first, err := httpQuery(ts.URL, probe, "cache-demo", false)
	if err != nil {
		log.Fatal(err)
	}
	again, err := httpQuery(ts.URL, probe, "cache-demo", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat of an identical query: cached=%v (rows equal: %v)\n",
		again.Cached, fmt.Sprint(first.Rows) == fmt.Sprint(again.Rows))
	day32 := cfg
	day32.Days = 1
	day32.Start = cfg.Start.AddDate(0, 0, cfg.Days+1)
	invalidated, err := srv.LoadRows("meterdata", day32.AllRows())
	if err != nil {
		log.Fatal(err)
	}
	after, err := httpQuery(ts.URL, probe, "cache-demo", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same query after a LOAD      : cached=%v (%d entries invalidated, recomputed against the new day)\n\n",
		after.Cached, invalidated)

	// --- server-side accounting ---
	snap := srv.Stats()
	fmt.Printf("server totals: %d queries, %d errors, %.0f simulated cluster-seconds\n",
		snap.Server.Queries, snap.Server.Errors, snap.Server.SimClusterSeconds)
	fmt.Printf("result cache : %d hits / %d misses (%d invalidated by the load)\n",
		snap.ResultCache.Hits, snap.ResultCache.Misses, snap.ResultCache.Invalidations)
	fmt.Printf("plan cache   : %d hits / %d misses\n", snap.PlanCache.Hits, snap.PlanCache.Misses)
	fmt.Printf("latency      : p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		snap.Server.LatencyP50Ms, snap.Server.LatencyP95Ms, snap.Server.LatencyP99Ms)
	var sessions []string
	for id := range snap.Sessions {
		sessions = append(sessions, id)
	}
	sort.Strings(sessions)
	for _, id := range sessions {
		m := snap.Sessions[id]
		fmt.Printf("  %-9s: %3d queries, %3d cache hits, %.1f sim-seconds\n",
			id, m.Queries, m.CacheHits, m.SimClusterSeconds)
	}
}

// runIngestDemo streams durable loads into a 4-shard, 2-replica WAL fleet
// over HTTP while one replica dies and comes back mid-stream.
func runIngestDemo(users int) {
	const shards, replicas, batches = 4, 2, 12
	cfg := dgfindex.DefaultMeterConfig()
	cfg.Users = users
	cfg.OtherMetrics = 0

	router, err := dgfindex.NewSharded(dgfindex.ShardConfig{Shards: shards, Replicas: replicas, Key: "userId"})
	if err != nil {
		log.Fatal(err)
	}
	must(router.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`))
	if err := router.LoadRowsByName("meterdata", cfg.AllRows()); err != nil {
		log.Fatal(err)
	}
	must(router.Exec(fmt.Sprintf(`CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
		AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_%d',
		'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed);count(*)')`, max(users/50, 1))))
	base := int64(cfg.Rows())

	walDir, err := os.MkdirTemp("", "dgf-wal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)
	srv := dgfindex.NewServerWithBackend(router, dgfindex.ServerConfig{
		WALDir:      walDir,
		FsyncPolicy: "interval",
	})
	if err := srv.WALError(); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("DGFServe on %s: %d shards x %d replicas, durable ingest (wal-dir %s)\n\n",
		ts.URL, shards, replicas, walDir)

	// Stream one batch per "collection interval"; shard 1 replica 0 dies a
	// third of the way in and revives two thirds in — its shard keeps
	// accepting loads on the surviving replica's log the whole time.
	loaded := int64(0)
	for b := 0; b < batches; b++ {
		switch b {
		case batches / 3:
			router.Kill(1, 0)
			fmt.Println("-- shard 1 replica 0 killed: its loads now hint to the survivor's log")
		case 2 * batches / 3:
			router.Revive(1, 0)
			fmt.Println("-- shard 1 replica 0 revived: catching up by log replay")
		}
		day := cfg
		day.Days = 1
		day.Start = cfg.Start.AddDate(0, 0, cfg.Days+b)
		rows := day.AllRows()
		body, _ := json.Marshal(map[string]any{"table": "meterdata", "rows": jsonRows(rows)})
		resp, err := http.Post(ts.URL+"/load", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var ack struct {
			RowsLoaded int    `json:"rows_loaded"`
			Durability string `json:"durability"`
			LSN        uint64 `json:"lsn"`
			Error      string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("batch %d: HTTP %d: %s", b, resp.StatusCode, ack.Error)
		}
		loaded += int64(ack.RowsLoaded)
		fmt.Printf("batch %2d: %5d rows acked %-7s (lsn %d)\n", b, ack.RowsLoaded, ack.Durability, ack.LSN)
	}

	// Wait for the revived replica to finish replaying, then drain the
	// appliers so every acknowledged row is queryable.
	for deadline := time.Now().Add(30 * time.Second); ; {
		catching := 0
		for _, sh := range router.Health() {
			catching += sh.CatchingUp
		}
		if catching == 0 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("catch-up did not settle")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := router.DrainWAL(ctx); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nafter catch-up and drain, per-replica log positions agree:")
	replayed := int64(0)
	for _, sh := range srv.WALStats() {
		fmt.Printf("  shard %d:", sh.Shard)
		for _, rep := range sh.Replicas {
			fmt.Printf("  r%d applied=%d/%d", rep.Replica, rep.AppliedLSN, rep.LastLSN)
			replayed += rep.ReplayedRows
			if rep.AppliedLSN != rep.LastLSN || rep.AppliedLSN != sh.NextLSN-1 {
				log.Fatalf("shard %d replica %d lags: applied %d, log tail %d, shard head %d",
					sh.Shard, rep.Replica, rep.AppliedLSN, rep.LastLSN, sh.NextLSN-1)
			}
		}
		fmt.Println()
	}
	res := must(router.Exec(`SELECT count(*) FROM meterdata`))
	got := int64(res.Rows[0][0].AsFloat())
	fmt.Printf("\ncount(*) = %d (base %d + %d streamed), %d rows replayed into the revived replica\n",
		got, base, loaded, replayed)
	if got != base+loaded {
		log.Fatalf("acknowledged rows missing: count %d, want %d", got, base+loaded)
	}
	fmt.Println("every acknowledged batch survived the outage")
}

// jsonRows renders storage rows as JSON-encodable cells for POST /load.
func jsonRows(rows []dgfindex.Row) [][]any {
	out := make([][]any, len(rows))
	for i, row := range rows {
		cells := make([]any, len(row))
		for j, v := range row {
			switch v.Kind {
			case dgfindex.KindInt64, dgfindex.KindTime:
				cells[j] = v.I
			case dgfindex.KindFloat64:
				cells[j] = v.F
			default:
				cells[j] = v.S
			}
		}
		out[i] = cells
	}
	return out
}

// buildQueryMix renders n meter queries of varied selectivity as HiveQL.
func buildQueryMix(cfg dgfindex.MeterConfig, n int) []string {
	var out []string
	fracs := []float64{0.001, 0.01, 0.05, 0.12}
	for i := 0; i < n; i++ {
		var where string
		if i%4 == 0 {
			where = cfg.Point().WhereClause()
		} else {
			where = cfg.Selective(fracs[i%len(fracs)]).WhereClause()
		}
		out = append(out, "SELECT sum(powerConsumed) FROM meterdata WHERE "+where)
	}
	return out
}

type queryResult struct {
	Rows   [][]any `json:"rows"`
	Cached bool    `json:"cached"`
	Error  string  `json:"error"`
}

func httpQuery(base, sql, session string, noCache bool) (*queryResult, error) {
	body, _ := json.Marshal(map[string]any{
		"sql": sql, "session": session, "no_cache": noCache,
	})
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var qr queryResult
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, qr.Error)
	}
	return &qr, nil
}

func rate(n int, d time.Duration) float64 { return float64(n) / d.Seconds() }

func must(res *dgfindex.Result, err error) *dgfindex.Result {
	if err != nil {
		log.Fatal(err)
	}
	return res
}
